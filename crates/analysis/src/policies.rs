//! Privacy-policy analysis (§7.3).
//!
//! Presence (with sanitization of abnormally short fetches — HTTP error
//! pages masquerading as policies), explicit GDPR mentions, length
//! statistics in letters, pairwise TF-IDF similarity over every policy
//! pair, and a Polisis-style rule-based annotator extracting what each
//! policy actually discloses.

use redlight_text::tfidf::TfIdfModel;
use redlight_text::tokenize::{contains_ci, letter_count};
use serde::{Deserialize, Serialize};

use crate::util::pct;
use redlight_crawler::db::InteractionRecord;

/// Minimum letters for a fetched document to count as a policy (the paper
/// removed 44 false positives caused by HTTP error pages).
pub const MIN_POLICY_LETTERS: usize = 600;

/// One collected policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyDoc {
    /// The domain the policy belongs to.
    pub site: String,
    /// Extracted policy text.
    pub text: String,
    /// Length in letters (the paper's length unit).
    pub letters: usize,
}

/// Polisis-style disclosure annotations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyAnnotations {
    /// Discloses cookies.
    pub discloses_cookies: bool,
    /// Discloses data types.
    pub discloses_data_types: bool,
    /// Discloses third parties.
    pub discloses_third_parties: bool,
}

/// Rule-based annotator over policy text.
pub fn annotate(text: &str) -> PolicyAnnotations {
    PolicyAnnotations {
        discloses_cookies: contains_ci(text, "cookie"),
        discloses_data_types: contains_ci(text, "ip address")
            || contains_ci(text, "data categories")
            || contains_ci(text, "device identifiers"),
        discloses_third_parties: contains_ci(text, "third party")
            || contains_ci(text, "third-party")
            || contains_ci(text, "partners"),
    }
}

/// Does the policy disclose the *complete* third-party list? Checked
/// against the domains actually observed on the site.
pub fn discloses_full_list(text: &str, observed_third_parties: &[String]) -> bool {
    if observed_third_parties.is_empty() {
        return false;
    }
    let named = observed_third_parties
        .iter()
        .filter(|d| text.contains(d.as_str()))
        .count();
    named * 10 >= observed_third_parties.len() * 8 // ≥ 80 % named
}

/// §7.3 aggregate report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Sites whose policy link yielded a real policy.
    pub with_policy: usize,
    /// With policy percentage.
    pub with_policy_pct: f64,
    /// Link-but-error false positives removed by sanitization.
    pub sanitized_out: usize,
    /// Policies explicitly mentioning the GDPR.
    pub gdpr_mentions: usize,
    /// GDPR percentage.
    pub gdpr_pct: f64,
    /// Mean letters.
    pub mean_letters: f64,
    /// Min letters.
    pub min_letters: usize,
    /// Max letters.
    pub max_letters: usize,
    /// Fraction of policy pairs with cosine similarity ≥ 0.5.
    pub similar_pairs_pct: f64,
    /// Pairs examined.
    pub pairs_examined: usize,
}

/// Collects sanitized policies from the interaction records.
pub fn collect(interactions: &[InteractionRecord]) -> (Vec<PolicyDoc>, usize) {
    let mut docs = Vec::new();
    let mut sanitized_out = 0usize;
    for rec in interactions {
        match &rec.policy_text {
            Some(text) => {
                let letters = letter_count(text);
                if letters >= MIN_POLICY_LETTERS {
                    docs.push(PolicyDoc {
                        site: rec.domain.clone(),
                        text: text.clone(),
                        letters,
                    });
                } else {
                    sanitized_out += 1;
                }
            }
            None if rec.policy_url.is_some() => sanitized_out += 1,
            None => {}
        }
    }
    (docs, sanitized_out)
}

/// Builds the §7.3 report. `corpus_size` is the sanitized porn corpus size.
/// `max_pairs` caps the pairwise similarity scan (sampling evenly) so small
/// worlds and benches stay fast; pass `usize::MAX` for the full quadratic
/// sweep.
pub fn report(
    docs: &[PolicyDoc],
    sanitized_out: usize,
    corpus_size: usize,
    max_pairs: usize,
) -> PolicyReport {
    let gdpr = docs.iter().filter(|d| d.text.contains("GDPR")).count();
    let lens: Vec<usize> = docs.iter().map(|d| d.letters).collect();

    // Pairwise TF-IDF similarity.
    let model = TfIdfModel::fit(&docs.iter().map(|d| d.text.as_str()).collect::<Vec<_>>());
    let n = docs.len();
    let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    let stride = (total_pairs / max_pairs.max(1)).max(1);
    let mut examined = 0usize;
    let mut similar = 0usize;
    let mut k = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if k.is_multiple_of(stride) {
                examined += 1;
                if model.similarity(i, j) >= 0.5 {
                    similar += 1;
                }
            }
            k += 1;
        }
    }

    PolicyReport {
        with_policy: docs.len(),
        with_policy_pct: pct(docs.len(), corpus_size.max(1)),
        sanitized_out,
        gdpr_mentions: gdpr,
        gdpr_pct: pct(gdpr, docs.len().max(1)),
        mean_letters: if lens.is_empty() {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / lens.len() as f64
        },
        min_letters: lens.iter().copied().min().unwrap_or(0),
        max_letters: lens.iter().copied().max().unwrap_or(0),
        similar_pairs_pct: pct(similar, examined.max(1)),
        pairs_examined: examined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotator_reads_disclosures() {
        let a = annotate("This site uses cookies and shares your IP address with partners.");
        assert!(a.discloses_cookies);
        assert!(a.discloses_data_types);
        assert!(a.discloses_third_parties);
        let b = annotate("We respect you. Nothing else to say.");
        assert_eq!(b, PolicyAnnotations::default());
    }

    #[test]
    fn full_list_requires_most_domains_named() {
        let parties = vec!["exoclick.com".to_string(), "addthis.com".to_string()];
        assert!(discloses_full_list(
            "We embed exoclick.com and addthis.com.",
            &parties
        ));
        assert!(!discloses_full_list("We embed exoclick.com.", &parties));
        assert!(!discloses_full_list("nothing", &[]));
    }

    #[test]
    fn report_counts_gdpr_and_similarity() {
        let boiler = "this privacy policy describes how this website collects uses stores and \
                      shares personal information about visitors including cookies analytics";
        let docs = vec![
            PolicyDoc {
                site: "a.com".into(),
                text: format!("{boiler} GDPR rights apply."),
                letters: 1_200,
            },
            PolicyDoc {
                site: "b.com".into(),
                text: format!("{boiler} contact the operator."),
                letters: 2_000,
            },
            PolicyDoc {
                site: "c.ru".into(),
                text: "политика конфиденциальности описывает обработку данных".into(),
                letters: 900,
            },
        ];
        let rep = report(&docs, 2, 100, usize::MAX);
        assert_eq!(rep.with_policy, 3);
        assert_eq!(rep.gdpr_mentions, 1);
        assert_eq!(rep.sanitized_out, 2);
        assert_eq!(rep.pairs_examined, 3);
        // a/b share boilerplate; c is cross-language.
        assert!((rep.similar_pairs_pct - 33.333).abs() < 1.0);
        assert_eq!(rep.min_letters, 900);
        assert_eq!(rep.max_letters, 2_000);
    }
}
