//! Parent-company attribution of third-party services (§4.2(3), Fig. 3).
//!
//! Disconnect's domain-to-company mapping is known to be incomplete, so the
//! attributor complements it with the organization field of each domain's
//! X.509 certificate (ignoring subjects that merely repeat a domain name).
//! The paper reports Disconnect alone resolving 142 FQDNs vs 4,477 (74 %)
//! with certificates.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};

use redlight_blocklist::EntityList;
use redlight_net::tls::CertSummary;
use redlight_obs::Registry;
use serde::{Deserialize, Serialize};

use crate::thirdparty::ThirdPartyExtract;
use redlight_crawler::db::CrawlRecord;

/// An out-of-band TLS probe: host → certificate digest, when one exists.
pub type CertProbe<'a> = &'a dyn Fn(&str) -> Option<CertSummary>;

/// Best certificate digest observed per FQDN, harvested once from crawl
/// traffic (plus the out-of-band probe) and shared by every attributor
/// built over the same crawls — the harvest walks all requests of all
/// crawls, so recomputing it per stage was the organizations stage's
/// dominant cost.
#[derive(Debug, Clone, Default)]
pub struct CertHarvest {
    /// FQDN → certificate digest.
    pub certs: BTreeMap<String, CertSummary>,
}

impl CertHarvest {
    /// Harvests certificates from the crawls, then probes every remaining
    /// contacted FQDN with `probe` (out-of-band TLS handshake; `None` when
    /// the host has no certificate).
    pub fn collect(crawls: &[&CrawlRecord], probe: Option<CertProbe<'_>>) -> Self {
        Self::collect_in(crawls, probe, &Registry::new())
    }

    /// [`CertHarvest::collect`] publishing `cache.cert-harvest.hits`
    /// (hosts whose certificate came from crawl traffic) and
    /// `cache.cert-harvest.misses` (contacted hosts that needed the
    /// out-of-band probe) into `registry`. Harvest contents are identical
    /// to [`CertHarvest::collect`].
    pub fn collect_in(
        crawls: &[&CrawlRecord],
        probe: Option<CertProbe<'_>>,
        registry: &Registry,
    ) -> Self {
        let hits = registry.counter("cache.cert-harvest.hits");
        let misses = registry.counter("cache.cert-harvest.misses");
        let mut certs: BTreeMap<String, CertSummary> = BTreeMap::new();
        let mut contacted: BTreeSet<String> = BTreeSet::new();
        for crawl in crawls {
            for record in crawl.successful() {
                for req in &record.visit.requests {
                    let host = req.url.host().as_str().to_string();
                    if let Some(cert) = &req.cert {
                        certs.entry(host.clone()).or_insert_with(|| cert.clone());
                    }
                    contacted.insert(host);
                }
            }
        }
        hits.add(certs.len() as u64);
        if let Some(probe) = probe {
            for host in contacted {
                if let std::collections::btree_map::Entry::Vacant(e) = certs.entry(host.clone()) {
                    misses.inc();
                    if let Some(cert) = probe(&host) {
                        e.insert(cert);
                    }
                }
            }
        }
        CertHarvest { certs }
    }
}

/// How an FQDN was attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributionSource {
    /// Resolved through the Disconnect entity list.
    Disconnect,
    /// Resolved through the X.509 subject organization.
    Certificate,
}

/// The attributor.
pub struct OrgAttributor<'a> {
    disconnect: &'a EntityList,
    /// Best certificate digest observed per FQDN — harvested from crawl
    /// traffic and complemented by an out-of-band TLS probe (researchers can
    /// always connect to port 443 of an observed FQDN, even when the site
    /// embedded it over plain HTTP). Owned when built via
    /// [`OrgAttributor::new`], borrowed when a [`CertHarvest`] is shared.
    certs: Cow<'a, BTreeMap<String, CertSummary>>,
}

impl<'a> OrgAttributor<'a> {
    /// Builds the attributor over a private harvest (see
    /// [`CertHarvest::collect`]).
    pub fn new(
        disconnect: &'a EntityList,
        crawls: &[&CrawlRecord],
        probe: Option<CertProbe<'_>>,
    ) -> Self {
        OrgAttributor {
            disconnect,
            certs: Cow::Owned(CertHarvest::collect(crawls, probe).certs),
        }
    }

    /// Builds the attributor over a shared, already-collected harvest
    /// without copying it.
    pub fn from_harvest(disconnect: &'a EntityList, harvest: &'a CertHarvest) -> Self {
        OrgAttributor {
            disconnect,
            certs: Cow::Borrowed(&harvest.certs),
        }
    }

    /// Attributes one FQDN to an organization.
    pub fn attribute(&self, fqdn: &str) -> Option<(String, AttributionSource)> {
        if let Some(owner) = self.disconnect.owner_of(fqdn) {
            return Some((owner.to_string(), AttributionSource::Disconnect));
        }
        self.certs
            .get(fqdn)
            .and_then(|c| c.org.clone())
            .map(|org| (normalize_org(&org), AttributionSource::Certificate))
    }

    /// Attribution coverage over a third-party FQDN set.
    pub fn coverage(&self, extract: &ThirdPartyExtract) -> AttributionStats {
        let mut resolved = 0usize;
        let mut disconnect_only = 0usize;
        let mut companies: BTreeSet<String> = BTreeSet::new();
        for fqdn in &extract.third_party_fqdns {
            if let Some((org, source)) = self.attribute(fqdn) {
                resolved += 1;
                if source == AttributionSource::Disconnect {
                    disconnect_only += 1;
                }
                companies.insert(org);
            }
        }
        AttributionStats {
            total_fqdns: extract.third_party_fqdns.len(),
            resolved_fqdns: resolved,
            resolved_by_disconnect: disconnect_only,
            companies: companies.len(),
        }
    }

    /// Fig. 3: per-organization prevalence — the fraction of successfully
    /// crawled sites embedding at least one of the org's services.
    pub fn prevalence(&self, extract: &ThirdPartyExtract, crawl_size: usize) -> Vec<OrgPrevalence> {
        let mut by_org: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
        for (site, parties) in &extract.per_site {
            for fqdn in &parties.third {
                if let Some((org, _)) = self.attribute(fqdn) {
                    by_org.entry(org).or_default().insert(site.as_str());
                }
            }
        }
        let mut out: Vec<OrgPrevalence> = by_org
            .into_iter()
            .map(|(organization, sites)| OrgPrevalence {
                organization,
                sites: sites.len(),
                fraction: crate::util::pct(sites.len(), crawl_size) / 100.0,
            })
            .collect();
        out.sort_by(|a, b| {
            b.sites
                .cmp(&a.sites)
                .then(a.organization.cmp(&b.organization))
        });
        out
    }
}

/// Normalizes a certificate organization string to a company label
/// ("ExoClick S.L." → "ExoClick").
fn normalize_org(org: &str) -> String {
    const SUFFIXES: &[&str] = &[
        " inc.",
        " inc",
        " llc",
        " ltd.",
        " ltd",
        " s.l.",
        " sa",
        " bv",
        " corp.",
        " corp",
        " corporation",
        " group",
        " co.",
    ];
    let mut out = org.trim().to_string();
    let lower = out.to_lowercase();
    for suffix in SUFFIXES {
        if lower.ends_with(suffix) {
            out.truncate(out.len() - suffix.len());
            break;
        }
    }
    out.trim_end_matches(',').trim().to_string()
}

/// Coverage numbers (§4.2(3)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionStats {
    /// Total FQDNs.
    pub total_fqdns: usize,
    /// Resolved FQDNs.
    pub resolved_fqdns: usize,
    /// Resolved by disconnect.
    pub resolved_by_disconnect: usize,
    /// Companies.
    pub companies: usize,
}

/// One Fig. 3 bar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgPrevalence {
    /// Attributed organization label.
    pub organization: String,
    /// Porn sites embedding at least one of the org's services.
    pub sites: usize,
    /// Fraction of crawled sites (0–1).
    pub fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_normalization() {
        assert_eq!(normalize_org("ExoClick S.L."), "ExoClick");
        assert_eq!(normalize_org("Oracle Corporation"), "Oracle");
        assert_eq!(normalize_org("Amazon.com, Inc."), "Amazon.com");
        assert_eq!(normalize_org("HProfits Group"), "HProfits");
        assert_eq!(normalize_org("Plain Name"), "Plain Name");
    }
}
