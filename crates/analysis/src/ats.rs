//! ATS classification via EasyList/EasyPrivacy (§4.2(2)) and Table 2.
//!
//! The lists are rule sets over whole URLs (`bbc.co.uk` is clean,
//! `bbc.co.uk/analytics` is not), so actual tracking instances are matched
//! against the full request URL; counting ATS *organizations* relaxes the
//! match to the base FQDN.

use std::collections::BTreeSet;

use redlight_blocklist::{FilterSet, RequestContext};
use redlight_net::http::ResourceKind;
use serde::{Deserialize, Serialize};

use crate::thirdparty::ThirdPartyExtract;
use redlight_crawler::db::CrawlRecord;

/// The classifier, loaded with both lists.
pub struct AtsClassifier {
    filters: FilterSet,
}

impl AtsClassifier {
    /// Parses the EasyList + EasyPrivacy snapshots.
    pub fn from_lists(easylist: &str, easyprivacy: &str) -> Self {
        let mut filters = FilterSet::new();
        filters.add_list(easylist);
        filters.add_list(easyprivacy);
        AtsClassifier { filters }
    }

    /// Full-URL matching: an actual instance of tracking.
    pub fn is_ats_url(
        &self,
        url: &str,
        page_host: &str,
        request_host: &str,
        kind: ResourceKind,
    ) -> bool {
        let ctx = RequestContext::new(page_host, request_host, kind);
        self.filters.matches(url, &ctx).is_blocked()
    }

    /// Relaxed FQDN matching: the domain belongs to a known ATS
    /// organization.
    pub fn is_ats_fqdn(&self, fqdn: &str) -> bool {
        self.filters.matches_fqdn_relaxed(fqdn)
    }

    /// Number of loaded rules.
    pub fn rule_count(&self) -> usize {
        self.filters.len()
    }
}

/// Table 2: first/third-party domain counts for both corpora.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Porn corpus size.
    pub porn_corpus_size: usize,
    /// Regular corpus size.
    pub regular_corpus_size: usize,
    /// Porn first party.
    pub porn_first_party: usize,
    /// Regular first party.
    pub regular_first_party: usize,
    /// Porn third party.
    pub porn_third_party: usize,
    /// Regular third party.
    pub regular_third_party: usize,
    /// Third party intersection.
    pub third_party_intersection: usize,
    /// Porn ATS.
    pub porn_ats: usize,
    /// Regular ATS.
    pub regular_ats: usize,
    /// ATS intersection.
    pub ats_intersection: usize,
}

/// ATS FQDNs among a third-party set (relaxed matching).
pub fn ats_fqdns<'a>(
    extract: &'a ThirdPartyExtract,
    classifier: &AtsClassifier,
) -> BTreeSet<&'a str> {
    extract
        .third_party_fqdns
        .iter()
        .map(String::as_str)
        .filter(|f| classifier.is_ats_fqdn(f))
        .collect()
}

/// Builds Table 2 from the two main crawls.
pub fn table2(
    porn_crawl: &CrawlRecord,
    porn_extract: &ThirdPartyExtract,
    regular_crawl: &CrawlRecord,
    regular_extract: &ThirdPartyExtract,
    classifier: &AtsClassifier,
) -> Table2 {
    let porn_ats: BTreeSet<&str> = ats_fqdns(porn_extract, classifier);
    let regular_ats: BTreeSet<&str> = ats_fqdns(regular_extract, classifier);
    Table2 {
        porn_corpus_size: porn_crawl.success_count(),
        regular_corpus_size: regular_crawl.success_count(),
        porn_first_party: porn_extract.first_party_fqdns.len(),
        regular_first_party: regular_extract.first_party_fqdns.len(),
        porn_third_party: porn_extract.third_party_fqdns.len(),
        regular_third_party: regular_extract.third_party_fqdns.len(),
        third_party_intersection: porn_extract
            .third_party_fqdns
            .intersection(&regular_extract.third_party_fqdns)
            .count(),
        porn_ats: porn_ats.len(),
        regular_ats: regular_ats.len(),
        ats_intersection: porn_ats.intersection(&regular_ats).count(),
    }
}

/// Actual tracking instances observed in a crawl: URLs that match the lists
/// in full, grouped by request FQDN.
pub fn tracking_instances(crawl: &CrawlRecord, classifier: &AtsClassifier) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for record in crawl.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let page_host = final_url.host().as_str();
        for req in &record.visit.requests {
            if req.status.is_none() {
                continue;
            }
            let host = req.url.host().as_str();
            if classifier.is_ats_url(&req.url.without_fragment(), page_host, host, req.kind) {
                out.insert(host.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_matches_url_and_relaxed() {
        let cls = AtsClassifier::from_lists(
            "||exoclick.com^\n||bbc.co.uk/analytics\n",
            "||metrics.io^$third-party\n",
        );
        assert!(cls.is_ats_url(
            "https://exoclick.com/tag/v1.js",
            "porn.site",
            "exoclick.com",
            ResourceKind::Script
        ));
        assert!(!cls.is_ats_url(
            "https://bbc.co.uk/news",
            "a.com",
            "bbc.co.uk",
            ResourceKind::Document
        ));
        assert!(cls.is_ats_fqdn("bbc.co.uk"));
        assert!(cls.is_ats_fqdn("metrics.io"));
        assert!(!cls.is_ats_fqdn("clean.org"));
        assert_eq!(cls.rule_count(), 3);
    }
}
