//! ATS classification via EasyList/EasyPrivacy (§4.2(2)) and Table 2.
//!
//! The lists are rule sets over whole URLs (`bbc.co.uk` is clean,
//! `bbc.co.uk/analytics` is not), so actual tracking instances are matched
//! against the full request URL; counting ATS *organizations* relaxes the
//! match to the base FQDN.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use redlight_obs::{Counter, Registry};

use redlight_blocklist::{FilterSet, RequestContext};
use redlight_net::http::ResourceKind;
use redlight_net::psl::{CacheStats, HostCache};
use serde::{Deserialize, Serialize};

use crate::thirdparty::ThirdPartyExtract;
use redlight_crawler::db::CrawlRecord;

/// Owned key of one memoized full-URL verdict.
type UrlKey = (Box<str>, Box<str>, Box<str>, ResourceKind);

/// The classifier, loaded with both lists.
///
/// Both entry points are memoized: the same `(url, page, host, kind)`
/// tuples and the same FQDNs recur across stages (the full-URL pass runs in
/// the ATS, geo and fingerprinting stages over the same crawls), so each
/// verdict is computed once per classifier. Verdict caches are keyed by
/// hash with exact key comparison inside the bucket — a cache hit costs no
/// allocation, and a 64-bit collision cannot flip a verdict.
pub struct AtsClassifier {
    filters: FilterSet,
    hosts: Arc<HostCache>,
    url_cache: RwLock<HashMap<u64, Vec<(UrlKey, bool)>>>,
    fqdn_cache: RwLock<HashMap<String, bool>>,
    url_hits: Counter,
    url_misses: Counter,
    fqdn_hits: Counter,
    fqdn_misses: Counter,
}

impl AtsClassifier {
    /// Parses the EasyList + EasyPrivacy snapshots with a private host
    /// cache.
    pub fn from_lists(easylist: &str, easyprivacy: &str) -> Self {
        Self::with_hosts(easylist, easyprivacy, Arc::new(HostCache::new()))
    }

    /// Parses the lists, sharing `hosts` (the pipeline-wide eTLD+1 memo)
    /// for third-party derivation.
    pub fn with_hosts(easylist: &str, easyprivacy: &str, hosts: Arc<HostCache>) -> Self {
        let mut filters = FilterSet::new();
        filters.add_list(easylist);
        filters.add_list(easyprivacy);
        AtsClassifier {
            filters,
            hosts,
            url_cache: RwLock::new(HashMap::new()),
            fqdn_cache: RwLock::new(HashMap::new()),
            url_hits: Counter::new(),
            url_misses: Counter::new(),
            fqdn_hits: Counter::new(),
            fqdn_misses: Counter::new(),
        }
    }

    /// [`AtsClassifier::with_hosts`] with verdict-memo counters published
    /// as the registry's `cache.ats-url-verdicts.*` /
    /// `cache.ats-fqdn-verdicts.*` metrics ([`AtsClassifier::cache_stats`]
    /// reads the same cells).
    pub fn with_hosts_in(
        easylist: &str,
        easyprivacy: &str,
        hosts: Arc<HostCache>,
        registry: &Registry,
    ) -> Self {
        AtsClassifier {
            url_hits: registry.counter("cache.ats-url-verdicts.hits"),
            url_misses: registry.counter("cache.ats-url-verdicts.misses"),
            fqdn_hits: registry.counter("cache.ats-fqdn-verdicts.hits"),
            fqdn_misses: registry.counter("cache.ats-fqdn-verdicts.misses"),
            ..Self::with_hosts(easylist, easyprivacy, hosts)
        }
    }

    /// The shared host → eTLD+1 memo this classifier resolves with.
    pub fn hosts(&self) -> &Arc<HostCache> {
        &self.hosts
    }

    /// Full-URL matching: an actual instance of tracking. Memoized per
    /// `(url, page_host, request_host, kind)`.
    pub fn is_ats_url(
        &self,
        url: &str,
        page_host: &str,
        request_host: &str,
        kind: ResourceKind,
    ) -> bool {
        let mut hasher = DefaultHasher::new();
        (url, page_host, request_host, kind).hash(&mut hasher);
        let key_hash = hasher.finish();
        if let Some(bucket) = self
            .url_cache
            .read()
            .expect("url cache lock")
            .get(&key_hash)
        {
            for ((k_url, k_page, k_req, k_kind), verdict) in bucket {
                if k_kind == &kind
                    && k_url.as_ref() == url
                    && k_page.as_ref() == page_host
                    && k_req.as_ref() == request_host
                {
                    self.url_hits.inc();
                    return *verdict;
                }
            }
        }
        self.url_misses.inc();
        let ctx = RequestContext::with_hosts(page_host, request_host, kind, &self.hosts);
        let verdict = self.filters.matches(url, &ctx).is_blocked();
        self.url_cache
            .write()
            .expect("url cache lock")
            .entry(key_hash)
            .or_default()
            .push((
                (url.into(), page_host.into(), request_host.into(), kind),
                verdict,
            ));
        verdict
    }

    /// Relaxed FQDN matching: the domain belongs to a known ATS
    /// organization. Memoized per FQDN.
    pub fn is_ats_fqdn(&self, fqdn: &str) -> bool {
        if let Some(&verdict) = self.fqdn_cache.read().expect("fqdn cache lock").get(fqdn) {
            self.fqdn_hits.inc();
            return verdict;
        }
        self.fqdn_misses.inc();
        let verdict = self.filters.matches_fqdn_relaxed(fqdn);
        self.fqdn_cache
            .write()
            .expect("fqdn cache lock")
            .insert(fqdn.to_string(), verdict);
        verdict
    }

    /// Hit/miss counters of the (URL verdict, FQDN verdict) memos.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (
            CacheStats {
                hits: self.url_hits.get(),
                misses: self.url_misses.get(),
            },
            CacheStats {
                hits: self.fqdn_hits.get(),
                misses: self.fqdn_misses.get(),
            },
        )
    }

    /// Number of loaded rules.
    pub fn rule_count(&self) -> usize {
        self.filters.len()
    }
}

/// Table 2: first/third-party domain counts for both corpora.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Porn corpus size.
    pub porn_corpus_size: usize,
    /// Regular corpus size.
    pub regular_corpus_size: usize,
    /// Porn first party.
    pub porn_first_party: usize,
    /// Regular first party.
    pub regular_first_party: usize,
    /// Porn third party.
    pub porn_third_party: usize,
    /// Regular third party.
    pub regular_third_party: usize,
    /// Third party intersection.
    pub third_party_intersection: usize,
    /// Porn ATS.
    pub porn_ats: usize,
    /// Regular ATS.
    pub regular_ats: usize,
    /// ATS intersection.
    pub ats_intersection: usize,
}

/// ATS FQDNs among a third-party set (relaxed matching).
pub fn ats_fqdns<'a>(
    extract: &'a ThirdPartyExtract,
    classifier: &AtsClassifier,
) -> BTreeSet<&'a str> {
    extract
        .third_party_fqdns
        .iter()
        .map(String::as_str)
        .filter(|f| classifier.is_ats_fqdn(f))
        .collect()
}

/// Builds Table 2 from the two main crawls.
pub fn table2(
    porn_crawl: &CrawlRecord,
    porn_extract: &ThirdPartyExtract,
    regular_crawl: &CrawlRecord,
    regular_extract: &ThirdPartyExtract,
    classifier: &AtsClassifier,
) -> Table2 {
    let porn_ats: BTreeSet<&str> = ats_fqdns(porn_extract, classifier);
    let regular_ats: BTreeSet<&str> = ats_fqdns(regular_extract, classifier);
    Table2 {
        porn_corpus_size: porn_crawl.success_count(),
        regular_corpus_size: regular_crawl.success_count(),
        porn_first_party: porn_extract.first_party_fqdns.len(),
        regular_first_party: regular_extract.first_party_fqdns.len(),
        porn_third_party: porn_extract.third_party_fqdns.len(),
        regular_third_party: regular_extract.third_party_fqdns.len(),
        third_party_intersection: porn_extract
            .third_party_fqdns
            .intersection(&regular_extract.third_party_fqdns)
            .count(),
        porn_ats: porn_ats.len(),
        regular_ats: regular_ats.len(),
        ats_intersection: porn_ats.intersection(&regular_ats).count(),
    }
}

/// Actual tracking instances observed in a crawl: URLs that match the lists
/// in full, grouped by request FQDN.
pub fn tracking_instances(crawl: &CrawlRecord, classifier: &AtsClassifier) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for record in crawl.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let page_host = final_url.host().as_str();
        for req in &record.visit.requests {
            if req.status.is_none() {
                continue;
            }
            let host = req.url.host().as_str();
            if classifier.is_ats_url(&req.url.without_fragment(), page_host, host, req.kind) {
                out.insert(host.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_matches_url_and_relaxed() {
        let cls = AtsClassifier::from_lists(
            "||exoclick.com^\n||bbc.co.uk/analytics\n",
            "||metrics.io^$third-party\n",
        );
        assert!(cls.is_ats_url(
            "https://exoclick.com/tag/v1.js",
            "porn.site",
            "exoclick.com",
            ResourceKind::Script
        ));
        assert!(!cls.is_ats_url(
            "https://bbc.co.uk/news",
            "a.com",
            "bbc.co.uk",
            ResourceKind::Document
        ));
        assert!(cls.is_ats_fqdn("bbc.co.uk"));
        assert!(cls.is_ats_fqdn("metrics.io"));
        assert!(!cls.is_ats_fqdn("clean.org"));
        assert_eq!(cls.rule_count(), 3);
    }

    #[test]
    fn verdicts_are_memoized() {
        let cls = AtsClassifier::from_lists("||exoclick.com^\n", "");
        for _ in 0..3 {
            assert!(cls.is_ats_url(
                "https://exoclick.com/tag.js",
                "porn.site",
                "exoclick.com",
                ResourceKind::Script
            ));
            assert!(!cls.is_ats_fqdn("clean.org"));
        }
        let (url, fqdn) = cls.cache_stats();
        assert_eq!((url.misses, url.hits), (1, 2));
        assert_eq!((fqdn.misses, fqdn.hits), (1, 2));
        // The host memo was consulted for the third-party derivation.
        assert!(!cls.hosts().is_empty());
        // Same URL with a different kind is a distinct verdict.
        assert!(cls.is_ats_url(
            "https://exoclick.com/tag.js",
            "porn.site",
            "exoclick.com",
            ResourceKind::Image
        ));
        assert_eq!(cls.cache_stats().0.misses, 2);
    }
}
