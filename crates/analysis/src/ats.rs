//! ATS classification via EasyList/EasyPrivacy (§4.2(2)) and Table 2.
//!
//! The lists are rule sets over whole URLs (`bbc.co.uk` is clean,
//! `bbc.co.uk/analytics` is not), so actual tracking instances are matched
//! against the full request URL; counting ATS *organizations* relaxes the
//! match to the base FQDN.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use redlight_obs::{Counter, Registry};

use redlight_blocklist::{FilterSet, RequestContext};
use redlight_net::http::ResourceKind;
use redlight_net::psl::{CacheStats, HostCache};
use serde::{Deserialize, Serialize};

use crate::thirdparty::ThirdPartyExtract;
use redlight_crawler::db::{CrawlRecord, SiteVisitRecord};
use redlight_crawler::store::{CrawlSlice, StrTable, Sym};

/// Owned key of one memoized full-URL verdict.
type UrlKey = (Box<str>, Box<str>, Box<str>, ResourceKind);

/// Number of lock stripes per verdict cache. The sharded stage queue runs
/// at most 8 workers; 16 stripes keep the probability of two workers
/// contending on one lock low without bloating the struct.
const CACHE_STRIPES: usize = 16;

/// Interned key of one batch-classified request occurrence:
/// `(request URL, page host, request host, resource kind)`, the first three
/// as syms of the owning crawl's table.
pub type BatchKey = (Sym, Sym, Sym, ResourceKind);

/// One lock stripe of the URL verdict memo: hash → bucket of
/// `(exact key, verdict)` entries.
type UrlVerdictStripe = RwLock<HashMap<u64, Vec<(UrlKey, bool)>>>;

/// The classifier, loaded with both lists.
///
/// Both entry points are memoized: the same `(url, page, host, kind)`
/// tuples and the same FQDNs recur across stages (the full-URL pass runs in
/// the ATS, geo and fingerprinting stages over the same crawls), so each
/// verdict is computed once per classifier. Verdict caches are keyed by
/// hash with exact key comparison inside the bucket — a cache hit costs no
/// allocation, and a 64-bit collision cannot flip a verdict. Both caches
/// are lock-striped ([`CACHE_STRIPES`] ways by key hash) so concurrent
/// shard workers don't serialize on a single `RwLock`.
pub struct AtsClassifier {
    filters: FilterSet,
    hosts: Arc<HostCache>,
    url_cache: Vec<UrlVerdictStripe>,
    fqdn_cache: Vec<RwLock<HashMap<String, bool>>>,
    url_hits: Counter,
    url_misses: Counter,
    fqdn_hits: Counter,
    fqdn_misses: Counter,
    batch_hits: Counter,
    batch_misses: Counter,
}

/// The stripe index a key hash selects.
fn stripe_of(hash: u64) -> usize {
    (hash % CACHE_STRIPES as u64) as usize
}

fn hash_of(key: &impl Hash) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

impl AtsClassifier {
    /// Parses the EasyList + EasyPrivacy snapshots with a private host
    /// cache.
    pub fn from_lists(easylist: &str, easyprivacy: &str) -> Self {
        Self::with_hosts(easylist, easyprivacy, Arc::new(HostCache::new()))
    }

    /// Parses the lists, sharing `hosts` (the pipeline-wide eTLD+1 memo)
    /// for third-party derivation. The matcher's Aho-Corasick prefilter
    /// tier is compiled here, once per classifier.
    pub fn with_hosts(easylist: &str, easyprivacy: &str, hosts: Arc<HostCache>) -> Self {
        let mut filters = FilterSet::new();
        filters.add_list(easylist);
        filters.add_list(easyprivacy);
        filters.build_prefilter();
        AtsClassifier {
            filters,
            hosts,
            url_cache: (0..CACHE_STRIPES)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            fqdn_cache: (0..CACHE_STRIPES)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            url_hits: Counter::new(),
            url_misses: Counter::new(),
            fqdn_hits: Counter::new(),
            fqdn_misses: Counter::new(),
            batch_hits: Counter::new(),
            batch_misses: Counter::new(),
        }
    }

    /// [`AtsClassifier::with_hosts`] with verdict-memo counters published
    /// as the registry's `cache.ats-url-verdicts.*` /
    /// `cache.ats-fqdn-verdicts.*` metrics ([`AtsClassifier::cache_stats`]
    /// reads the same cells), the matcher's prefilter counters as
    /// `cache.ats-prefilter.*`, and the batch dedup counters as
    /// `cache.ats-batch-dedup.*`.
    pub fn with_hosts_in(
        easylist: &str,
        easyprivacy: &str,
        hosts: Arc<HostCache>,
        registry: &Registry,
    ) -> Self {
        let mut this = AtsClassifier {
            url_hits: registry.counter("cache.ats-url-verdicts.hits"),
            url_misses: registry.counter("cache.ats-url-verdicts.misses"),
            fqdn_hits: registry.counter("cache.ats-fqdn-verdicts.hits"),
            fqdn_misses: registry.counter("cache.ats-fqdn-verdicts.misses"),
            batch_hits: registry.counter("cache.ats-batch-dedup.hits"),
            batch_misses: registry.counter("cache.ats-batch-dedup.misses"),
            ..Self::with_hosts(easylist, easyprivacy, hosts)
        };
        this.filters.set_prefilter_counters(
            registry.counter("cache.ats-prefilter.hits"),
            registry.counter("cache.ats-prefilter.misses"),
        );
        this
    }

    /// The shared host → eTLD+1 memo this classifier resolves with.
    pub fn hosts(&self) -> &Arc<HostCache> {
        &self.hosts
    }

    /// Full-URL matching: an actual instance of tracking. Memoized per
    /// `(url, page_host, request_host, kind)`.
    pub fn is_ats_url(
        &self,
        url: &str,
        page_host: &str,
        request_host: &str,
        kind: ResourceKind,
    ) -> bool {
        let key_hash = hash_of(&(url, page_host, request_host, kind));
        let stripe = &self.url_cache[stripe_of(key_hash)];
        if let Some(bucket) = stripe.read().expect("url cache lock").get(&key_hash) {
            for ((k_url, k_page, k_req, k_kind), verdict) in bucket {
                if k_kind == &kind
                    && k_url.as_ref() == url
                    && k_page.as_ref() == page_host
                    && k_req.as_ref() == request_host
                {
                    self.url_hits.inc();
                    return *verdict;
                }
            }
        }
        self.url_misses.inc();
        let ctx = RequestContext::with_hosts(page_host, request_host, kind, &self.hosts);
        let verdict = self.filters.matches(url, &ctx).is_blocked();
        stripe
            .write()
            .expect("url cache lock")
            .entry(key_hash)
            .or_default()
            .push((
                (url.into(), page_host.into(), request_host.into(), kind),
                verdict,
            ));
        verdict
    }

    /// Relaxed FQDN matching: the domain belongs to a known ATS
    /// organization. Memoized per FQDN.
    pub fn is_ats_fqdn(&self, fqdn: &str) -> bool {
        let stripe = &self.fqdn_cache[stripe_of(hash_of(&fqdn))];
        if let Some(&verdict) = stripe.read().expect("fqdn cache lock").get(fqdn) {
            self.fqdn_hits.inc();
            return verdict;
        }
        self.fqdn_misses.inc();
        let verdict = self.filters.matches_fqdn_relaxed(fqdn);
        stripe
            .write()
            .expect("fqdn cache lock")
            .insert(fqdn.to_string(), verdict);
        verdict
    }

    /// Classifies every answered request of a slice's successful visits in
    /// one pass, deduplicated per distinct interned
    /// `(url, page, host, kind)` key and grouped by request FQDN so
    /// consecutive classifications share matcher and cache state.
    ///
    /// The returned columns are keyed by [`Sym`]s of the slice's table:
    /// resolving a verdict through [`AtsVerdicts`] is a hash of three
    /// `u32`s instead of re-rendering and re-hashing the URL strings.
    /// Verdicts are computed through [`AtsClassifier::is_ats_url`] /
    /// [`AtsClassifier::is_ats_fqdn`], so the shared memo (and its
    /// counters) observes exactly one miss per distinct key — the
    /// per-request path and the batch path stay byte-identical.
    pub fn classify_batch(&self, slice: CrawlSlice<'_>) -> BatchVerdicts {
        let mut url: HashMap<BatchKey, bool> = HashMap::new();
        let mut order: Vec<BatchKey> = Vec::new();
        let mut total_requests = 0usize;
        for record in slice.successful() {
            let Some(page) = record.final_host else {
                continue;
            };
            for (i, req) in record.visit.requests.iter().enumerate() {
                if req.status.is_none() {
                    continue;
                }
                total_requests += 1;
                let key = (
                    record.request_urls[i],
                    page,
                    record.request_hosts[i],
                    req.kind,
                );
                match url.entry(key) {
                    Entry::Occupied(_) => self.batch_hits.inc(),
                    Entry::Vacant(slot) => {
                        self.batch_misses.inc();
                        slot.insert(false);
                        order.push(key);
                    }
                }
            }
        }
        // Group by request FQDN (then URL) so verdict-cache and matcher
        // state stays hot across consecutive keys of the same host.
        order.sort_unstable_by(|a, b| {
            slice
                .name(a.2)
                .cmp(slice.name(b.2))
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
                .then((a.3 as u8).cmp(&(b.3 as u8)))
        });
        let mut host_syms: Vec<Sym> = Vec::new();
        for key in order {
            let verdict = self.is_ats_url(
                slice.name(key.0),
                slice.name(key.1),
                slice.name(key.2),
                key.3,
            );
            url.insert(key, verdict);
            host_syms.push(key.2);
        }
        host_syms.sort_unstable();
        host_syms.dedup();
        let fqdn = host_syms
            .into_iter()
            .map(|h| (h, self.is_ats_fqdn(slice.name(h))))
            .collect();
        BatchVerdicts {
            url,
            fqdn,
            total_requests,
        }
    }

    /// Hit/miss counters of the (URL verdict, FQDN verdict) memos.
    pub fn cache_stats(&self) -> (CacheStats, CacheStats) {
        (
            CacheStats {
                hits: self.url_hits.get(),
                misses: self.url_misses.get(),
            },
            CacheStats {
                hits: self.fqdn_hits.get(),
                misses: self.fqdn_misses.get(),
            },
        )
    }

    /// Scan-rule (skipped, evaluated) totals of the matcher's Aho-Corasick
    /// prefilter tier.
    pub fn prefilter_stats(&self) -> CacheStats {
        let (skipped, evaluated) = self.filters.prefilter_stats();
        CacheStats {
            hits: skipped,
            misses: evaluated,
        }
    }

    /// Batch-dedup counters: hits are request occurrences answered by an
    /// earlier occurrence's key within [`AtsClassifier::classify_batch`],
    /// misses are distinct keys that had to be classified.
    pub fn batch_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.batch_hits.get(),
            misses: self.batch_misses.get(),
        }
    }

    /// Number of loaded rules.
    pub fn rule_count(&self) -> usize {
        self.filters.len()
    }
}

/// Sym-keyed verdict columns for one crawl, produced by
/// [`AtsClassifier::classify_batch`]. Stages consume them through
/// [`AtsVerdicts`].
#[derive(Debug, Clone, Default)]
pub struct BatchVerdicts {
    /// Verdict per distinct `(url, page, host, kind)` key.
    url: HashMap<BatchKey, bool>,
    /// Relaxed-FQDN verdict per distinct request-host sym.
    fqdn: HashMap<Sym, bool>,
    /// Request occurrences covered (answered requests of successful visits
    /// with a final URL).
    pub total_requests: usize,
}

impl BatchVerdicts {
    /// Number of distinct classification keys.
    pub fn distinct_urls(&self) -> usize {
        self.url.len()
    }

    /// The batch verdict for `key`, when covered.
    pub fn url_verdict(&self, key: BatchKey) -> Option<bool> {
        self.url.get(&key).copied()
    }

    /// The relaxed-FQDN verdict for an interned request host.
    pub fn fqdn_verdict(&self, host: Sym) -> Option<bool> {
        self.fqdn.get(&host).copied()
    }
}

/// A stage's view of ATS classification: the shared classifier, plus —
/// when batching is on — the crawl's Sym-keyed [`BatchVerdicts`] column.
/// Sym-keyed lookups answer from the column without rendering a single
/// string; anything uncovered (canvas script URLs, extract FQDNs, batch
/// off) falls back to the memoized classifier, so verdicts are identical
/// either way.
#[derive(Clone, Copy)]
pub struct AtsVerdicts<'a> {
    classifier: &'a AtsClassifier,
    batch: Option<&'a BatchVerdicts>,
}

impl<'a> AtsVerdicts<'a> {
    /// A view with no batch column: every lookup delegates.
    pub fn new(classifier: &'a AtsClassifier) -> Self {
        AtsVerdicts {
            classifier,
            batch: None,
        }
    }

    /// A view backed by one crawl's batch verdict column.
    pub fn with_batch(classifier: &'a AtsClassifier, batch: &'a BatchVerdicts) -> Self {
        AtsVerdicts {
            classifier,
            batch: Some(batch),
        }
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &'a AtsClassifier {
        self.classifier
    }

    /// The shared host → eTLD+1 memo.
    pub fn hosts(&self) -> &'a Arc<HostCache> {
        self.classifier.hosts()
    }

    /// Relaxed FQDN matching by string (extract sets, service hosts).
    pub fn is_ats_fqdn(&self, fqdn: &str) -> bool {
        self.classifier.is_ats_fqdn(fqdn)
    }

    /// Full-URL matching by strings, for URLs that are not request-column
    /// entries (e.g. canvas script URLs).
    pub fn is_ats_url(
        &self,
        url: &str,
        page_host: &str,
        request_host: &str,
        kind: ResourceKind,
    ) -> bool {
        self.classifier
            .is_ats_url(url, page_host, request_host, kind)
    }

    /// The verdict for request `i` of `record` (whose page host is
    /// `page`): answered from the batch column when present, else
    /// resolved through `names` and classified.
    pub fn request_verdict(
        &self,
        names: &StrTable,
        record: &SiteVisitRecord,
        page: Sym,
        i: usize,
    ) -> bool {
        let key = (
            record.request_urls[i],
            page,
            record.request_hosts[i],
            record.visit.requests[i].kind,
        );
        if let Some(v) = self.batch.and_then(|b| b.url_verdict(key)) {
            return v;
        }
        self.classifier.is_ats_url(
            names.resolve(key.0),
            names.resolve(key.1),
            names.resolve(key.2),
            key.3,
        )
    }

    /// Relaxed FQDN matching by interned host sym.
    pub fn fqdn_verdict(&self, names: &StrTable, host: Sym) -> bool {
        if let Some(v) = self.batch.and_then(|b| b.fqdn_verdict(host)) {
            return v;
        }
        self.classifier.is_ats_fqdn(names.resolve(host))
    }
}

/// Table 2: first/third-party domain counts for both corpora.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// Porn corpus size.
    pub porn_corpus_size: usize,
    /// Regular corpus size.
    pub regular_corpus_size: usize,
    /// Porn first party.
    pub porn_first_party: usize,
    /// Regular first party.
    pub regular_first_party: usize,
    /// Porn third party.
    pub porn_third_party: usize,
    /// Regular third party.
    pub regular_third_party: usize,
    /// Third party intersection.
    pub third_party_intersection: usize,
    /// Porn ATS.
    pub porn_ats: usize,
    /// Regular ATS.
    pub regular_ats: usize,
    /// ATS intersection.
    pub ats_intersection: usize,
}

/// ATS FQDNs among a third-party set (relaxed matching).
pub fn ats_fqdns<'a>(extract: &'a ThirdPartyExtract, ats: AtsVerdicts<'_>) -> BTreeSet<&'a str> {
    extract
        .third_party_fqdns
        .iter()
        .map(String::as_str)
        .filter(|f| ats.is_ats_fqdn(f))
        .collect()
}

/// Builds Table 2 from the two main crawls.
pub fn table2(
    porn_crawl: &CrawlRecord,
    porn_extract: &ThirdPartyExtract,
    regular_crawl: &CrawlRecord,
    regular_extract: &ThirdPartyExtract,
    ats: AtsVerdicts<'_>,
) -> Table2 {
    let porn_ats: BTreeSet<&str> = ats_fqdns(porn_extract, ats);
    let regular_ats: BTreeSet<&str> = ats_fqdns(regular_extract, ats);
    Table2 {
        porn_corpus_size: porn_crawl.success_count(),
        regular_corpus_size: regular_crawl.success_count(),
        porn_first_party: porn_extract.first_party_fqdns.len(),
        regular_first_party: regular_extract.first_party_fqdns.len(),
        porn_third_party: porn_extract.third_party_fqdns.len(),
        regular_third_party: regular_extract.third_party_fqdns.len(),
        third_party_intersection: porn_extract
            .third_party_fqdns
            .intersection(&regular_extract.third_party_fqdns)
            .count(),
        porn_ats: porn_ats.len(),
        regular_ats: regular_ats.len(),
        ats_intersection: porn_ats.intersection(&regular_ats).count(),
    }
}

/// Actual tracking instances observed in a crawl: URLs that match the lists
/// in full, grouped by request FQDN. Runs entirely over the interned
/// columns — with a batch view, no URL string is rendered or hashed.
pub fn tracking_instances(crawl: &CrawlRecord, ats: AtsVerdicts<'_>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for record in crawl.successful() {
        let Some(page) = record.final_host else {
            continue;
        };
        for (i, req) in record.visit.requests.iter().enumerate() {
            if req.status.is_none() {
                continue;
            }
            if ats.request_verdict(crawl.names(), record, page, i) {
                out.insert(crawl.name(record.request_hosts[i]).to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_matches_url_and_relaxed() {
        let cls = AtsClassifier::from_lists(
            "||exoclick.com^\n||bbc.co.uk/analytics\n",
            "||metrics.io^$third-party\n",
        );
        assert!(cls.is_ats_url(
            "https://exoclick.com/tag/v1.js",
            "porn.site",
            "exoclick.com",
            ResourceKind::Script
        ));
        assert!(!cls.is_ats_url(
            "https://bbc.co.uk/news",
            "a.com",
            "bbc.co.uk",
            ResourceKind::Document
        ));
        assert!(cls.is_ats_fqdn("bbc.co.uk"));
        assert!(cls.is_ats_fqdn("metrics.io"));
        assert!(!cls.is_ats_fqdn("clean.org"));
        assert_eq!(cls.rule_count(), 3);
    }

    #[test]
    fn verdicts_are_memoized() {
        let cls = AtsClassifier::from_lists("||exoclick.com^\n", "");
        for _ in 0..3 {
            assert!(cls.is_ats_url(
                "https://exoclick.com/tag.js",
                "porn.site",
                "exoclick.com",
                ResourceKind::Script
            ));
            assert!(!cls.is_ats_fqdn("clean.org"));
        }
        let (url, fqdn) = cls.cache_stats();
        assert_eq!((url.misses, url.hits), (1, 2));
        assert_eq!((fqdn.misses, fqdn.hits), (1, 2));
        // The host memo was consulted for the third-party derivation.
        assert!(!cls.hosts().is_empty());
        // Same URL with a different kind is a distinct verdict.
        assert!(cls.is_ats_url(
            "https://exoclick.com/tag.js",
            "porn.site",
            "exoclick.com",
            ResourceKind::Image
        ));
        assert_eq!(cls.cache_stats().0.misses, 2);
    }

    #[test]
    fn classify_batch_matches_per_request_and_dedups() {
        use redlight_browser::instrument::{Initiator, RequestRecord};
        use redlight_browser::PageVisit;
        use redlight_crawler::db::{CorpusLabel, CrawlRecord};
        use redlight_net::geoip::Country;
        use redlight_net::http::{Method, StatusCode};
        use redlight_net::url::Url;
        use std::net::Ipv4Addr;

        let req = |url: &str, ok: bool| RequestRecord {
            url: Url::parse(url).unwrap(),
            method: Method::Get,
            kind: ResourceKind::Script,
            referrer: None,
            initiator: Initiator::Markup,
            status: ok.then_some(StatusCode::OK),
            content_type: None,
            cert: None,
            redirected_to: None,
        };
        let mut crawl = CrawlRecord::new(
            Country::Spain,
            CorpusLabel::Porn,
            Ipv4Addr::new(203, 0, 113, 9),
        );
        let visit = PageVisit {
            success: true,
            final_url: Some(Url::parse("https://porn.site/").unwrap()),
            requests: vec![
                req("https://exoclick.com/tag.js", true),
                req("https://exoclick.com/tag.js", true), // duplicate occurrence
                req("https://clean.org/lib.js", true),
                req("https://dead.example/x.js", false), // unanswered: skipped
            ],
            ..PageVisit::failed(Url::parse("https://porn.site/").unwrap(), false)
        };
        crawl.push_visit("porn.site", visit);

        let cls = AtsClassifier::from_lists("||exoclick.com^\n", "");
        let batch = cls.classify_batch(crawl.full());
        assert_eq!(batch.total_requests, 3);
        assert_eq!(batch.distinct_urls(), 2);
        let stats = cls.batch_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));

        // Per-occurrence verdicts through the view equal fresh per-request
        // string classification.
        let fresh = AtsClassifier::from_lists("||exoclick.com^\n", "");
        let view = AtsVerdicts::with_batch(&cls, &batch);
        let record = &crawl.visits[0];
        let page = record.final_host.unwrap();
        for (i, r) in record.visit.requests.iter().enumerate() {
            if r.status.is_none() {
                continue;
            }
            let expect = fresh.is_ats_url(
                &r.url.without_fragment(),
                "porn.site",
                r.url.host().as_str(),
                r.kind,
            );
            assert_eq!(
                view.request_verdict(crawl.names(), record, page, i),
                expect,
                "request {i}"
            );
        }
        // The column answered those lookups: no extra classifier misses
        // beyond the batch's own 2 distinct keys.
        assert_eq!(cls.cache_stats().0.misses, 2);
        // Sym-keyed FQDN verdicts agree with the string path.
        assert!(view.fqdn_verdict(crawl.names(), record.request_hosts[0]));
        assert!(!view.fqdn_verdict(crawl.names(), record.request_hosts[2]));
    }
}
