//! The HTTP-cookie pipeline (§5.1.1) and Table 4.
//!
//! Steps, as in the paper: collect every cookie-set event; discard session
//! cookies and values shorter than 6 characters (unlikely to hold unique
//! identifiers); split first- vs third-party by the cookie's effective
//! domain; decode values (base64 and URL encoding) hunting for the client's
//! IP address and geolocation payloads.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use redlight_net::codec;
use serde::{Deserialize, Serialize};

use crate::ats::AtsVerdicts;
use crate::util::{pct, reg};
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// Minimum value length for a cookie to plausibly carry a unique ID.
pub const MIN_ID_LEN: usize = 6;

/// One aggregated cookie observation: `(site, setting domain, name)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CookieRow {
    /// The crawled domain the cookie was observed on.
    pub site: String,
    /// Registrable domain the cookie is scoped to.
    pub domain: String,
    /// Cookie name.
    pub name: String,
    /// Cookie value as delivered.
    pub value: String,
    /// No expiry was set (a session cookie).
    pub session: bool,
    /// The cookie domain differs from the site's registrable domain.
    pub third_party: bool,
}

/// Full §5.1.1 statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CookieStats {
    /// All distinct (site, domain, name) cookie observations.
    pub total_cookies: usize,
    /// Fraction of crawled sites setting at least one cookie.
    pub sites_with_cookies_pct: f64,
    /// Cookies surviving the ID filter (non-session, len ≥ 6).
    pub id_cookies: usize,
    /// ID cookies longer than 1,000 characters.
    pub long_cookies: usize,
    /// Longest observed value.
    pub max_value_len: usize,
    /// Third-party ID cookies.
    pub third_party_id_cookies: usize,
    /// Distinct third-party domains delivering ID cookies.
    pub third_party_domains: usize,
    /// Fraction of sites with at least one third-party ID cookie.
    pub sites_with_third_party_pct: f64,
    /// Cookies whose decoded value contains the client IP.
    pub ip_cookies: usize,
    /// Fraction of IP cookies delivered by the top IP-embedding registrable
    /// domain's organization family.
    pub ip_cookies_top_org_pct: f64,
    /// Sites where IP-embedding cookies were observed.
    pub ip_cookie_sites: usize,
    /// Cookies carrying geolocation payloads.
    pub geo_cookies: usize,
    /// Sites with geolocation cookies.
    pub geo_cookie_sites: usize,
    /// Domains delivering geolocation cookies.
    pub geo_cookie_domains: Vec<String>,
    /// Share of sites carrying at least one of the 100 most popular
    /// `name=value` cookies (§5.1.1: "the 100 most popular cookies appear
    /// in over 30 % of the total porn websites") — the same browser session
    /// re-receives identical uid cookies across sites.
    pub top100_cookie_site_pct: f64,
}

/// One Table 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Registrable domain delivering the cookies.
    pub domain: String,
    /// % of crawled porn sites where the domain delivers ID cookies.
    pub site_pct: f64,
    /// Distinct ID-cookie observations for the domain.
    pub cookies: usize,
    /// EasyList/EasyPrivacy flag the domain (relaxed matching).
    pub is_ats: bool,
    /// Also observed in the regular-web reference crawl.
    pub in_web_ecosystem: bool,
    /// % of this domain's cookies embedding the client IP.
    pub ip_pct: f64,
}

/// Collects deduplicated cookie rows from a crawl.
pub fn collect(crawl: &CrawlRecord) -> Vec<CookieRow> {
    scan(crawl.full())
}

/// The map side of [`collect`]: one shard's rows, deduplicated within the
/// shard and emitted in visit order.
pub fn scan(slice: CrawlSlice<'_>) -> Vec<CookieRow> {
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut rows = Vec::new();
    for record in slice.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let site = slice.name(record.domain);
        let site_reg = reg(final_url.host().as_str()).to_string();
        for obs in &record.visit.cookies {
            if !obs.accepted {
                continue;
            }
            let domain = reg(&obs.effective_domain).to_string();
            let key = (site.to_string(), domain.clone(), obs.cookie.name.clone());
            if !seen.insert(key) {
                continue;
            }
            rows.push(CookieRow {
                site: site.to_string(),
                third_party: domain != site_reg,
                domain,
                name: obs.cookie.name.clone(),
                value: obs.cookie.value.clone(),
                session: obs.cookie.is_session(),
            });
        }
    }
    rows
}

/// The reduce side of [`collect`]: concatenates per-shard rows in shard
/// order, re-applying the `(site, domain, name)` dedup across shard
/// boundaries. Because shards are contiguous visit ranges, the merged
/// sequence keeps first occurrences exactly where the monolithic scan
/// put them.
pub fn merge(parts: impl IntoIterator<Item = Vec<CookieRow>>) -> Vec<CookieRow> {
    let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    let mut rows = Vec::new();
    for part in parts {
        for row in part {
            let key = (row.site.clone(), row.domain.clone(), row.name.clone());
            if seen.insert(key) {
                rows.push(row);
            }
        }
    }
    rows
}

/// `true` when the row survives the ID-cookie filter.
pub fn is_id_cookie(row: &CookieRow) -> bool {
    !row.session && row.value.chars().count() >= MIN_ID_LEN
}

/// Decodes a cookie value looking for the crawler's IP.
pub fn embeds_ip(value: &str, client_ip: Ipv4Addr) -> bool {
    let needle = client_ip.to_string();
    if value.contains(&needle) || codec::percent_decode(value).contains(&needle) {
        return true;
    }
    codec::base64_decode_lossy_text(value).is_some_and(|text| text.contains(&needle))
}

/// Decodes a cookie value looking for coordinates (`lat=…`, `lon=…`).
pub fn embeds_geo(value: &str) -> bool {
    let decoded = codec::percent_decode(value);
    decoded.contains("lat=") && decoded.contains("lon=")
}

/// Whether the geo payload also names the network provider.
pub fn geo_includes_isp(value: &str) -> bool {
    codec::percent_decode(value).contains("isp=")
}

/// Computes the §5.1.1 statistics.
pub fn stats(crawl: &CrawlRecord, rows: &[CookieRow], client_ip: Ipv4Addr) -> CookieStats {
    let crawled = crawl.success_count();
    let sites_with: BTreeSet<&str> = rows.iter().map(|r| r.site.as_str()).collect();
    let id_rows: Vec<&CookieRow> = rows.iter().filter(|r| is_id_cookie(r)).collect();
    let third_id: Vec<&&CookieRow> = id_rows.iter().filter(|r| r.third_party).collect();
    let third_sites: BTreeSet<&str> = third_id.iter().map(|r| r.site.as_str()).collect();
    let third_domains: BTreeSet<&str> = third_id.iter().map(|r| r.domain.as_str()).collect();

    let ip_rows: Vec<&&CookieRow> = id_rows
        .iter()
        .filter(|r| embeds_ip(&r.value, client_ip))
        .collect();
    let ip_sites: BTreeSet<&str> = ip_rows.iter().map(|r| r.site.as_str()).collect();
    // Top IP-embedding registrable family (the ExoClick role in the paper).
    let mut by_domain: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &ip_rows {
        *by_domain.entry(r.domain.as_str()).or_default() += 1;
    }
    // Family = domains sharing the maximal org; approximate by taking the
    // two largest contributors (the exosrv/exoclick split).
    let mut counts: Vec<usize> = by_domain.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top_family: usize = counts.iter().take(2).sum();
    let ip_top_pct = pct(top_family, ip_rows.len().max(1));

    // Popularity of exact `name=value` pairs across sites.
    let mut by_pair: BTreeMap<(&str, &str), BTreeSet<&str>> = BTreeMap::new();
    for r in rows {
        by_pair
            .entry((r.name.as_str(), r.value.as_str()))
            .or_default()
            .insert(r.site.as_str());
    }
    let mut pair_sites: Vec<&BTreeSet<&str>> = by_pair.values().collect();
    pair_sites.sort_by_key(|sites| std::cmp::Reverse(sites.len()));
    let mut covered: BTreeSet<&str> = BTreeSet::new();
    for sites in pair_sites.iter().take(100) {
        covered.extend(sites.iter());
    }
    let top100_pct = pct(covered.len(), crawled.max(1));

    let geo_rows: Vec<&CookieRow> = rows.iter().filter(|r| embeds_geo(&r.value)).collect();
    let geo_sites: BTreeSet<&str> = geo_rows.iter().map(|r| r.site.as_str()).collect();
    let geo_domains: BTreeSet<String> = geo_rows.iter().map(|r| r.domain.clone()).collect();

    CookieStats {
        total_cookies: rows.len(),
        sites_with_cookies_pct: pct(sites_with.len(), crawled),
        id_cookies: id_rows.len(),
        long_cookies: id_rows
            .iter()
            .filter(|r| r.value.chars().count() > 1_000)
            .count(),
        max_value_len: rows
            .iter()
            .map(|r| r.value.chars().count())
            .max()
            .unwrap_or(0),
        third_party_id_cookies: third_id.len(),
        third_party_domains: third_domains.len(),
        sites_with_third_party_pct: pct(third_sites.len(), crawled),
        ip_cookies: ip_rows.len(),
        ip_cookies_top_org_pct: ip_top_pct,
        ip_cookie_sites: ip_sites.len(),
        geo_cookies: geo_rows.len(),
        geo_cookie_sites: geo_sites.len(),
        geo_cookie_domains: geo_domains.into_iter().collect(),
        top100_cookie_site_pct: top100_pct,
    }
}

/// Builds Table 4: the top third-party ID-cookie-delivering domains.
pub fn table4(
    crawl: &CrawlRecord,
    rows: &[CookieRow],
    ats: AtsVerdicts<'_>,
    regular_third_party: &BTreeSet<String>,
    client_ip: Ipv4Addr,
    top_n: usize,
) -> Vec<Table4Row> {
    let crawled = crawl.success_count();
    let mut per_domain: BTreeMap<&str, (BTreeSet<&str>, usize, usize)> = BTreeMap::new();
    for row in rows.iter().filter(|r| r.third_party && is_id_cookie(r)) {
        let entry = per_domain.entry(row.domain.as_str()).or_default();
        entry.0.insert(row.site.as_str());
        entry.1 += 1;
        if embeds_ip(&row.value, client_ip) {
            entry.2 += 1;
        }
    }
    let mut table: Vec<Table4Row> = per_domain
        .into_iter()
        .map(|(domain, (sites, cookies, with_ip))| Table4Row {
            site_pct: pct(sites.len(), crawled),
            cookies,
            is_ats: ats.is_ats_fqdn(domain),
            in_web_ecosystem: regular_third_party.iter().any(|f| reg(f) == domain),
            ip_pct: pct(with_ip, cookies.max(1)),
            domain: domain.to_string(),
        })
        .collect();
    table.sort_by(|a, b| {
        b.site_pct
            .partial_cmp(&a.site_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.domain.cmp(&b.domain))
    });
    table.truncate(top_n);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_filter_drops_session_and_short() {
        let mk = |value: &str, session: bool| CookieRow {
            site: "s.com".into(),
            domain: "t.com".into(),
            name: "uid".into(),
            value: value.into(),
            session,
            third_party: true,
        };
        assert!(is_id_cookie(&mk("abcdef0123", false)));
        assert!(!is_id_cookie(&mk("abcdef0123", true)));
        assert!(!is_id_cookie(&mk("abc", false)));
        assert!(is_id_cookie(&mk("abcdef", false)), "boundary: exactly 6");
    }

    #[test]
    fn ip_detection_through_encodings() {
        let ip = Ipv4Addr::new(203, 0, 113, 77);
        assert!(embeds_ip("x203.0.113.77y", ip));
        assert!(embeds_ip(
            &codec::base64_encode(b"ip=203.0.113.77&uid=42"),
            ip
        ));
        assert!(embeds_ip(&codec::percent_encode("ip=203.0.113.77"), ip));
        assert!(!embeds_ip("deadbeefdeadbeef", ip));
        assert!(!embeds_ip(&codec::base64_encode(b"ip=10.9.9.9"), ip));
    }

    #[test]
    fn geo_detection() {
        assert!(embeds_geo(&codec::percent_encode("lat=40.4,lon=-3.7")));
        assert!(geo_includes_isp(&codec::percent_encode(
            "lat=40.4,lon=-3.7,isp=Example Networks"
        )));
        assert!(!embeds_geo("uid=12345678"));
        assert!(!geo_includes_isp(&codec::percent_encode("lat=1,lon=2")));
    }
}
