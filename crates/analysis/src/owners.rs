//! Website-owner discovery (§4.1, Table 1).
//!
//! Discovering who operates a porn site is hard: imprints are vague, WHOIS
//! is redacted. The paper combines (1) TF-IDF similarity over privacy
//! policies and `<head>` markup to form candidate same-owner clusters,
//! manually pruning template false positives; (2) legal/operator statements
//! inside the policies; (3) DNS, WHOIS and X.509 signals. Here the manual
//! pruning step is replaced by requiring an *explicit, consistent operator
//! label* for a cluster — clusters that merely share a CMS template carry
//! no such label and are discarded, exactly what the human review achieved.

use std::collections::BTreeMap;

use redlight_net::whois::WhoisDb;
use redlight_rankings::RankHistory;
use redlight_text::tfidf::TfIdfModel;
use serde::{Deserialize, Serialize};

use crate::policies::PolicyDoc;
use redlight_crawler::db::CrawlRecord;

/// Similarity threshold for candidate same-owner policy pairs (the paper
/// keyed on coefficients at or near 1).
pub const CLUSTER_THRESHOLD: f64 = 0.95;

/// One attributed ownership cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OwnerCluster {
    /// The operating company.
    pub company: String,
    /// Domains attributed to it.
    pub sites: Vec<String>,
    /// The member with the best (lowest) rank, with that rank.
    pub most_popular: Option<(String, u32)>,
}

/// §4.1 headline numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OwnershipReport {
    /// Discovered clusters, largest first (Table 1).
    pub clusters: Vec<OwnerCluster>,
    /// Distinct companies attributed.
    pub companies: usize,
    /// Total sites across all clusters.
    pub attributed_sites: usize,
    /// Share of the corpus with NO reliable owner information.
    pub unattributed_pct: f64,
    /// Candidate clusters discarded as template artifacts.
    pub template_clusters_discarded: usize,
}

/// Extracts an explicit operator statement ("operated by X.") from policy
/// text.
pub fn operator_statement(text: &str) -> Option<String> {
    let idx = text.find("operated by ")?;
    let rest = &text[idx + "operated by ".len()..];
    let end = rest.find(['.', ',', ';'])?;
    let name = rest[..end].trim();
    if name.is_empty() || name.len() > 60 {
        None
    } else {
        Some(name.to_string())
    }
}

/// Extracts the publisher label from `<head>` markup (meta tags naming the
/// operating network), the head-similarity signal distilled.
pub fn head_publisher(html: &str) -> Option<String> {
    let doc = redlight_html::parser::parse(html);
    for id in redlight_html::query::by_tag(&doc, "meta") {
        let el = doc.element(id)?;
        if el.attr("name") == Some("publisher") {
            return el.attr("content").map(str::to_string);
        }
    }
    None
}

/// Runs owner discovery.
///
/// * `docs` — sanitized policies (from the interaction crawl);
/// * `crawl` — the main crawl (for `<head>` markup);
/// * `whois` — the registration database;
/// * `histories` — per-domain rank histories (for Table 1's "most popular").
/// * `corpus_size` — sanitized corpus size.
pub fn discover(
    docs: &[PolicyDoc],
    crawl: &CrawlRecord,
    whois: &WhoisDb,
    histories: &BTreeMap<String, RankHistory>,
    corpus_size: usize,
) -> OwnershipReport {
    // --- Signal 1: policy-text clusters, labeled by operator statements. --
    let model = TfIdfModel::fit(&docs.iter().map(|d| d.text.as_str()).collect::<Vec<_>>());
    let cluster_ids = model.cluster(CLUSTER_THRESHOLD);

    let mut clusters: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (doc_idx, cid) in cluster_ids.iter().enumerate() {
        clusters.entry(*cid).or_default().push(doc_idx);
    }

    let mut by_company: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut discarded = 0usize;
    for members in clusters.values().filter(|m| m.len() >= 2) {
        // Label: the unique operator statement across the cluster.
        let mut labels: Vec<String> = members
            .iter()
            .filter_map(|&i| operator_statement(&docs[i].text))
            .collect();
        labels.sort();
        labels.dedup();
        match labels.as_slice() {
            [company] => {
                let entry = by_company.entry(company.clone()).or_default();
                for &i in members {
                    if !entry.contains(&docs[i].site) {
                        entry.push(docs[i].site.clone());
                    }
                }
            }
            // No label, or conflicting labels: a shared CMS template, not a
            // company — the manual review would discard it.
            _ => discarded += 1,
        }
    }

    // --- Signal 2: head publisher metadata from the main crawl. ---
    for record in crawl.successful() {
        if record.visit.dom_html.is_empty() {
            continue;
        }
        if let Some(publisher) = head_publisher(&record.visit.dom_html) {
            let domain = crawl.name(record.domain);
            let entry = by_company.entry(publisher).or_default();
            if !entry.iter().any(|d| d == domain) {
                entry.push(domain.to_string());
            }
        }
    }

    // --- Signal 3: WHOIS organizations corroborate/extend clusters. ---
    for record in &crawl.visits {
        let domain = crawl.name(record.domain);
        if let Some(org) = whois
            .lookup(redlight_net::psl::registrable_domain(domain))
            .and_then(|r| r.organization())
        {
            let entry = by_company.entry(org.to_string()).or_default();
            if !entry.iter().any(|d| d == domain) {
                entry.push(domain.to_string());
            }
        }
    }

    // --- Assemble Table 1. ---
    let mut out: Vec<OwnerCluster> = by_company
        .into_iter()
        .map(|(company, sites)| {
            let most_popular = sites
                .iter()
                .filter_map(|s| {
                    histories
                        .get(s)
                        .and_then(|h| h.best())
                        .map(|b| (s.clone(), b))
                })
                .min_by_key(|(_, b)| *b);
            OwnerCluster {
                company,
                sites,
                most_popular,
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.sites
            .len()
            .cmp(&a.sites.len())
            .then(a.company.cmp(&b.company))
    });

    let attributed: usize = out.iter().map(|c| c.sites.len()).sum();
    OwnershipReport {
        companies: out.len(),
        attributed_sites: attributed,
        unattributed_pct: crate::util::pct(
            corpus_size.saturating_sub(attributed),
            corpus_size.max(1),
        ),
        template_clusters_discarded: discarded,
        clusters: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_extraction() {
        assert_eq!(
            operator_statement("Privacy Policy. This website is operated by MindGeek. More…"),
            Some("MindGeek".to_string())
        );
        assert_eq!(operator_statement("no statement here"), None);
        assert_eq!(operator_statement("operated by ."), None);
    }

    #[test]
    fn head_publisher_extraction() {
        let html = r#"<head><meta name="publisher" content="Gamma Entertainment"></head>"#;
        assert_eq!(
            head_publisher(html),
            Some("Gamma Entertainment".to_string())
        );
        assert_eq!(head_publisher("<head></head>"), None);
    }
}
