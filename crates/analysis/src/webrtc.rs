//! WebRTC usage as a potential tracking vector (§5.1.4).
//!
//! WebRTC APIs expose local/public addresses; combined with other tracking
//! they enable NAT-level cross-device tracking and VPN detection. The paper
//! found 27 scripts across 177 porn sites from 13 services, two of them
//! EasyList-indexed.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::ats::AtsVerdicts;
use crate::fingerprint::ScriptId;
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// Aggregated WebRTC findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebRtcReport {
    /// Distinct scripts invoking WebRTC APIs.
    pub scripts: BTreeSet<ScriptId>,
    /// Sites where WebRTC was used.
    pub sites: BTreeSet<String>,
    /// Third-party services (registrable domains) using WebRTC.
    pub services: BTreeSet<String>,
    /// Services that the blocklists classify as ATS.
    pub ats_services: BTreeSet<String>,
    /// Sites where WebRTC co-occurs with another tracking mechanism
    /// (cookies or canvas fingerprinting by the same script's service).
    pub sites_with_other_tracking: usize,
}

/// One shard's partial WebRTC tallies.
#[derive(Debug, Clone, Default)]
pub struct WebRtcScan {
    scripts: BTreeSet<ScriptId>,
    sites: BTreeSet<String>,
    services: BTreeSet<String>,
    with_other: usize,
}

/// Scans a crawl for WebRTC API usage.
pub fn detect(crawl: &CrawlRecord, ats: AtsVerdicts<'_>) -> WebRtcReport {
    finalize(scan(crawl.full(), ats), ats)
}

/// The reduce side: set unions plus the co-occurrence sum.
pub fn merge(parts: impl IntoIterator<Item = WebRtcScan>) -> WebRtcScan {
    let mut out = WebRtcScan::default();
    for part in parts {
        out.scripts.extend(part.scripts);
        out.sites.extend(part.sites);
        out.services.extend(part.services);
        out.with_other += part.with_other;
    }
    out
}

/// Classifies the (merged) services against the blocklists and assembles
/// the report.
pub fn finalize(scan: WebRtcScan, ats: AtsVerdicts<'_>) -> WebRtcReport {
    let ats_services: BTreeSet<String> = scan
        .services
        .iter()
        .filter(|d| ats.is_ats_fqdn(d))
        .cloned()
        .collect();
    WebRtcReport {
        scripts: scan.scripts,
        sites: scan.sites,
        services: scan.services,
        ats_services,
        sites_with_other_tracking: scan.with_other,
    }
}

/// The map side: scans one shard.
pub fn scan(slice: CrawlSlice<'_>, ats: AtsVerdicts<'_>) -> WebRtcScan {
    let mut scripts: BTreeSet<ScriptId> = BTreeSet::new();
    let mut sites: BTreeSet<String> = BTreeSet::new();
    let mut services: BTreeSet<String> = BTreeSet::new();
    let mut with_other = 0usize;

    for record in slice.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let page_host = final_url.host().as_str();
        let mut used_here = false;
        for call in &record.visit.js_calls {
            if !call.api.starts_with("webrtc.") {
                continue;
            }
            used_here = true;
            let id = match &call.script_url {
                Some(u) => ScriptId {
                    host: u.host().as_str().to_string(),
                    path: u.path().to_string(),
                },
                None => ScriptId {
                    host: page_host.to_string(),
                    path: "<inline>".to_string(),
                },
            };
            let hosts = ats.hosts();
            if !hosts.same_site(&id.host, page_host) {
                services.insert(hosts.registrable(&id.host).to_string());
            }
            scripts.insert(id);
        }
        if used_here {
            sites.insert(slice.name(record.domain).to_string());
            // "Other tracking mechanisms in conjunction": any cookie set or
            // canvas readback during the same visit.
            let other = !record.visit.cookies.is_empty()
                || record
                    .visit
                    .canvas
                    .iter()
                    .any(|(_, a)| a.to_data_url_calls > 0);
            if other {
                with_other += 1;
            }
        }
    }

    WebRtcScan {
        scripts,
        sites,
        services,
        with_other,
    }
}
