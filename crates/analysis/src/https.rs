//! HTTPS posture (§5.2, Table 6).
//!
//! Each site is crawled HTTPS-first with HTTP downgrade, so a site
//! "supports HTTPS" when its document loaded without downgrading. A
//! third-party service supports HTTPS when at least one request to it
//! succeeded over HTTPS. A site is *fully* HTTPS only when the document and
//! every embedded resource travelled encrypted — the paper finds 68 % of
//! porn sites fail that bar, and 8 % of those leak cookies in clear text.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use redlight_net::http::Scheme;
use redlight_rankings::PopularityTier;
use serde::{Deserialize, Serialize};

use crate::cookies::{embeds_geo, embeds_ip};
use crate::util::pct;
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// One Table 6 band.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table6Row {
    /// Tier.
    pub tier: PopularityTier,
    /// Sites.
    pub sites: usize,
    /// Sites HTTPS percentage.
    pub sites_https_pct: f64,
    /// Third party FQDNs.
    pub third_party_fqdns: usize,
    /// Third party HTTPS percentage.
    pub third_party_https_pct: f64,
}

/// Aggregate §5.2 numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HttpsReport {
    /// Rows.
    pub rows: Vec<Table6Row>,
    /// Sites that are NOT fully HTTPS (document or any subresource plain).
    pub not_fully_https: usize,
    /// Not fully HTTPS percentage.
    pub not_fully_https_pct: f64,
    /// Of the not-fully-HTTPS sites, those sending cookies over plain HTTP.
    pub clear_cookie_sites: usize,
    /// Clear cookie percentage.
    pub clear_cookie_pct: f64,
}

/// One shard's partial HTTPS tallies — every accumulator [`report`] needs,
/// keyed so that [`merge`] commutes with visit-range concatenation.
#[derive(Debug, Clone, Default)]
pub struct HttpsScan {
    // Per-tier site tallies.
    site_total: BTreeMap<PopularityTier, usize>,
    site_https: BTreeMap<PopularityTier, usize>,
    // Third-party FQDN → (tiers seen on, any https success).
    tp_tiers: BTreeMap<String, BTreeSet<PopularityTier>>,
    tp_https: BTreeMap<String, bool>,
    not_fully: usize,
    clear_cookies: usize,
    crawled: usize,
}

/// Builds Table 6. `tier_of` maps a crawled domain to its popularity tier
/// (from the rank analysis — observable via the toplist, not ground truth);
/// `client_ip` feeds the sensitive-payload detection for clear-text leaks.
pub fn report(
    crawl: &CrawlRecord,
    tier_of: &BTreeMap<String, PopularityTier>,
    client_ip: Ipv4Addr,
) -> HttpsReport {
    finalize(scan(crawl.full(), tier_of, client_ip))
}

/// The map side: scans one shard of the crawl into an [`HttpsScan`].
pub fn scan(
    slice: CrawlSlice<'_>,
    tier_of: &BTreeMap<String, PopularityTier>,
    client_ip: Ipv4Addr,
) -> HttpsScan {
    let mut out = HttpsScan {
        crawled: slice.success_count(),
        ..HttpsScan::default()
    };
    let HttpsScan {
        site_total,
        site_https,
        tp_tiers,
        tp_https,
        not_fully,
        clear_cookies,
        ..
    } = &mut out;

    for record in slice.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let tier = tier_of
            .get(slice.name(record.domain))
            .copied()
            .unwrap_or(PopularityTier::Beyond100k);
        *site_total.entry(tier).or_default() += 1;
        let site_is_https = final_url.scheme() == Scheme::Https && !record.visit.https_downgraded;
        if site_is_https {
            *site_https.entry(tier).or_default() += 1;
        }

        let site_host = final_url.host().as_str();
        let mut all_encrypted = site_is_https;
        let mut plain_with_cookies = false;
        for req in &record.visit.requests {
            let host = req.url.host().as_str().to_string();
            let ok = req.status.is_some();
            let third = crate::util::reg(&host) != crate::util::reg(site_host);
            if third && ok {
                tp_tiers.entry(host.clone()).or_default().insert(tier);
                let https_ok = req.url.scheme() == Scheme::Https;
                let entry = tp_https.entry(host).or_default();
                *entry |= https_ok;
            }
            if ok && req.url.scheme() == Scheme::Http {
                all_encrypted = false;
            }
        }
        // Sensitive data in the clear (§5.2): a cookie whose value carries
        // the client's IP or geolocation was delivered over plain HTTP.
        plain_with_cookies |= record.visit.cookies.iter().any(|c| {
            !c.secure_channel
                && (embeds_ip(&c.cookie.value, client_ip) || embeds_geo(&c.cookie.value))
        });
        if !all_encrypted {
            *not_fully += 1;
            if plain_with_cookies {
                *clear_cookies += 1;
            }
        }
    }
    out
}

/// The reduce side: folds per-shard partials together. Counter maps add,
/// tier sets union, the any-HTTPS flags OR — all commutative, so the merge
/// of any contiguous split equals the monolithic scan.
pub fn merge(parts: impl IntoIterator<Item = HttpsScan>) -> HttpsScan {
    let mut out = HttpsScan::default();
    for part in parts {
        for (tier, n) in part.site_total {
            *out.site_total.entry(tier).or_default() += n;
        }
        for (tier, n) in part.site_https {
            *out.site_https.entry(tier).or_default() += n;
        }
        for (fqdn, tiers) in part.tp_tiers {
            out.tp_tiers.entry(fqdn).or_default().extend(tiers);
        }
        for (fqdn, https_ok) in part.tp_https {
            *out.tp_https.entry(fqdn).or_default() |= https_ok;
        }
        out.not_fully += part.not_fully;
        out.clear_cookies += part.clear_cookies;
        out.crawled += part.crawled;
    }
    out
}

/// Turns the (merged) tallies into the final [`HttpsReport`].
pub fn finalize(scan: HttpsScan) -> HttpsReport {
    let HttpsScan {
        site_total,
        site_https,
        tp_tiers,
        tp_https,
        not_fully,
        clear_cookies,
        crawled,
    } = scan;
    let rows = PopularityTier::ALL
        .into_iter()
        .map(|tier| {
            let sites = site_total.get(&tier).copied().unwrap_or(0);
            let https_sites = site_https.get(&tier).copied().unwrap_or(0);
            let tier_fqdns: Vec<&String> = tp_tiers
                .iter()
                .filter(|(_, tiers)| tiers.contains(&tier))
                .map(|(f, _)| f)
                .collect();
            let https_fqdns = tier_fqdns
                .iter()
                .filter(|f| tp_https.get(**f).copied().unwrap_or(false))
                .count();
            Table6Row {
                tier,
                sites,
                sites_https_pct: pct(https_sites, sites.max(1)),
                third_party_fqdns: tier_fqdns.len(),
                third_party_https_pct: pct(https_fqdns, tier_fqdns.len().max(1)),
            }
        })
        .collect();

    HttpsReport {
        rows,
        not_fully_https: not_fully,
        not_fully_https_pct: pct(not_fully, crawled.max(1)),
        clear_cookie_sites: clear_cookies,
        clear_cookie_pct: pct(clear_cookies, not_fully.max(1)),
    }
}
