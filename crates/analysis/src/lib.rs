//! # redlight-analysis
//!
//! Every analysis of the IMC'19 study, implemented over the measurement
//! database only — never over simulator ground truth. Each module maps to a
//! paper section (see DESIGN.md's per-experiment index):
//!
//! | module | paper | artifact |
//! |---|---|---|
//! | [`thirdparty`] | §4.2(1) | first/third-party classification (FQDN + X.509 + Levenshtein) |
//! | [`ats`] | §4.2(2) | EasyList/EasyPrivacy classification, Table 2 |
//! | [`orgs`] | §4.2(3) | parent-company attribution, Fig. 3 |
//! | [`owners`] | §4.1 | publisher-cluster discovery, Table 1 |
//! | [`cookies`] | §5.1.1 | ID-cookie pipeline + encoded payloads, Table 4 |
//! | [`sync`] | §5.1.2 | cookie-synchronization detection, Fig. 4 |
//! | [`fingerprint`] | §5.1.3 | canvas/font criteria, Table 5 |
//! | [`webrtc`] | §5.1.4 | WebRTC usage |
//! | [`https`] | §5.2 | HTTPS posture, Table 6 |
//! | [`popularity`] | §3, §4.2.2 | Fig. 1 series, Table 3 tiers |
//! | [`geo`] | §6 | per-country comparison, Table 7 |
//! | [`malware`] | §5.3, §6.2 | threat-intel aggregation |
//! | [`consent`] | §7.1 | cookie-banner taxonomy, Table 8 |
//! | [`agegate`] | §7.2 | age-verification prevalence |
//! | [`policies`] | §7.3 | policy presence, GDPR mentions, TF-IDF similarity |
//! | [`monetization`] | §4.1 | subscription/paywall business models |
//! | [`crossborder`] | §10 (future work) | jurisdiction-leaving identifier flows |

#![warn(missing_docs)]

pub mod agegate;
pub mod ats;
pub mod consent;
pub mod cookies;
pub mod crossborder;
pub mod fingerprint;
pub mod geo;
pub mod https;
pub mod malware;
pub mod monetization;
pub mod orgs;
pub mod owners;
pub mod policies;
pub mod popularity;
pub mod sync;
pub mod thirdparty;
pub mod util;
pub mod webrtc;

/// A threat-intel feed the malware analyses query (VirusTotal stand-in).
/// Implemented by the simulation layer; the analysis only sees detection
/// counts.
pub trait ThreatFeed {
    /// Number of scanners (of 70) flagging `domain`.
    fn detections(&self, domain: &str) -> u8;
}
