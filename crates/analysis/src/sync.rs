//! Cookie-synchronization detection (§5.1.2, Fig. 4).
//!
//! Browsers wall cookies off per origin, so trackers share identifiers by
//! embedding their cookie **values** in URLs they redirect partners to. The
//! detector checks whether any observed cookie value later appears inside a
//! request URL to a different organization. Like the paper, values are
//! matched whole — never split on `-`/`=` delimiters — giving a lower-bound
//! estimate.

use std::collections::{BTreeMap, BTreeSet};

use redlight_net::psl::HostCache;
use serde::{Deserialize, Serialize};

use crate::util::{reg, same_site};
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// One syncing pair of domains.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SyncPair {
    /// Registrable domain whose cookie value leaked.
    pub origin: String,
    /// Registrable domain that received it.
    pub destination: String,
}

/// Aggregated sync findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyncReport {
    /// Porn sites on which at least one sync flow was observed.
    pub sites_with_sync: usize,
    /// Distinct `(origin, destination)` pairs with exchange counts.
    pub pairs: BTreeMap<SyncPair, usize>,
    /// Distinct origin domains.
    pub origins: usize,
    /// Distinct destination domains.
    pub destinations: usize,
    /// Fraction of the most popular `top_k` sites with syncing (the paper
    /// reports 58 % of the Alexa top-100 porn sites).
    pub top_sites_with_sync_pct: f64,
}

impl SyncReport {
    /// Pairs exchanging at least `min` cookies (the Fig. 4 edge filter).
    pub fn heavy_pairs(&self, min: usize) -> Vec<(&SyncPair, usize)> {
        let mut v: Vec<(&SyncPair, usize)> = self
            .pairs
            .iter()
            .filter(|(_, n)| **n >= min)
            .map(|(p, n)| (p, *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }
}

/// Detector knobs (DESIGN.md ablation 3).
#[derive(Debug, Clone, Copy)]
pub struct SyncOptions {
    /// Minimum cookie-value length to consider (whole-value floor).
    pub min_value_len: usize,
    /// Additionally match on cookie-value *fragments* split on
    /// `-`/`=`/`|`/`.` (both on the cookie side and inside URL parameter
    /// values). The paper deliberately does NOT do this ("to avoid
    /// introducing false positives, we do not split the cookie value by
    /// delimiters"), so the default is off; the ablation bench turns it on
    /// to quantify the precision cost — first-party analytics beacons start
    /// matching immediately.
    pub split_delimiters: bool,
}

impl Default for SyncOptions {
    fn default() -> Self {
        SyncOptions {
            min_value_len: 8,
            split_delimiters: false,
        }
    }
}

/// Detects syncing across a crawl with the paper's defaults. `ranked_sites`
/// orders sites by best Alexa rank for the top-`top_k` statistic.
pub fn detect(crawl: &CrawlRecord, ranked_sites: &[String], top_k: usize) -> SyncReport {
    detect_with_options(crawl, ranked_sites, top_k, SyncOptions::default())
}

/// Detects syncing with explicit options.
pub fn detect_with_options(
    crawl: &CrawlRecord,
    ranked_sites: &[String],
    top_k: usize,
    options: SyncOptions,
) -> SyncReport {
    detect_inner(crawl, ranked_sites, top_k, options, None)
}

/// [`detect_with_options`] with eTLD+1 resolutions memoized in `hosts` —
/// the same cookie and destination domains recur across the crawl, and the
/// stage pipeline shares `hosts` with every other stage. Identical output.
pub fn detect_cached(
    crawl: &CrawlRecord,
    ranked_sites: &[String],
    top_k: usize,
    options: SyncOptions,
    hosts: &HostCache,
) -> SyncReport {
    detect_inner(crawl, ranked_sites, top_k, options, Some(hosts))
}

fn detect_inner(
    crawl: &CrawlRecord,
    ranked_sites: &[String],
    top_k: usize,
    options: SyncOptions,
    hosts: Option<&HostCache>,
) -> SyncReport {
    // The detector is defined as the two-pass map/reduce run on a single
    // shard, so sharded runs reproduce it by construction.
    let regs = regs_inner(crawl.full(), options, hosts);
    let matches = matches_inner(crawl.full(), &regs, options, hosts);
    finalize(matches, ranked_sites, top_k)
}

/// Pass-1 result: each qualifying cookie value (or fragment) mapped to the
/// registrable domain that owns it and the **absolute** index of the visit
/// that first set it. The session registers cookies visit by visit, so a
/// value only syncs at visits at-or-after its first registration.
pub type SyncRegistrations = BTreeMap<String, (String, usize)>;

/// Pass-2 partial: sync pairs and syncing sites observed in one shard.
#[derive(Debug, Clone, Default)]
pub struct SyncMatches {
    pairs: BTreeMap<SyncPair, usize>,
    sites: BTreeSet<String>,
}

/// Pass 1 over one shard: registers cookie values set during its visits.
pub fn scan_registrations(
    slice: CrawlSlice<'_>,
    options: SyncOptions,
    hosts: &HostCache,
) -> SyncRegistrations {
    regs_inner(slice, options, Some(hosts))
}

/// Merges per-shard registrations, keeping the globally earliest setter of
/// each value (shards cover disjoint visit ranges, so indices never tie).
pub fn merge_registrations(
    parts: impl IntoIterator<Item = SyncRegistrations>,
) -> SyncRegistrations {
    let mut out = SyncRegistrations::new();
    for part in parts {
        for (value, (owner, idx)) in part {
            match out.entry(value) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert((owner, idx));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if idx < e.get().1 {
                        e.insert((owner, idx));
                    }
                }
            }
        }
    }
    out
}

/// Pass 2 over one shard: matches query values against the **merged**
/// registrations, honouring session order via the first-set index.
pub fn scan_matches(
    slice: CrawlSlice<'_>,
    regs: &SyncRegistrations,
    options: SyncOptions,
    hosts: &HostCache,
) -> SyncMatches {
    matches_inner(slice, regs, options, Some(hosts))
}

/// Merges per-shard match partials (counts add, site sets union).
pub fn merge_matches(parts: impl IntoIterator<Item = SyncMatches>) -> SyncMatches {
    let mut out = SyncMatches::default();
    for part in parts {
        for (pair, n) in part.pairs {
            *out.pairs.entry(pair).or_default() += n;
        }
        out.sites.extend(part.sites);
    }
    out
}

/// Builds the [`SyncReport`] from (merged) match partials.
pub fn finalize(matches: SyncMatches, ranked_sites: &[String], top_k: usize) -> SyncReport {
    let SyncMatches { pairs, sites } = matches;
    let origins: BTreeSet<&str> = pairs.keys().map(|p| p.origin.as_str()).collect();
    let destinations: BTreeSet<&str> = pairs.keys().map(|p| p.destination.as_str()).collect();
    let top: Vec<&String> = ranked_sites.iter().take(top_k).collect();
    let top_with = top.iter().filter(|s| sites.contains(s.as_str())).count();

    SyncReport {
        sites_with_sync: sites.len(),
        origins: origins.len(),
        destinations: destinations.len(),
        pairs,
        top_sites_with_sync_pct: crate::util::pct(top_with, top.len().max(1)),
    }
}

fn regs_inner(
    slice: CrawlSlice<'_>,
    options: SyncOptions,
    hosts: Option<&HostCache>,
) -> SyncRegistrations {
    let reg_of = |host: &str| -> String {
        match hosts {
            Some(cache) => cache.registrable(host).to_string(),
            None => reg(host).to_string(),
        }
    };
    // Cookie values observed in the session, with their owning domain and
    // first-setting visit. Values shorter than 8 chars would false-positive
    // against ordinary query values.
    let mut out = SyncRegistrations::new();
    for (i, record) in slice.visits.iter().enumerate() {
        let idx = slice.offset + i;
        for obs in &record.visit.cookies {
            if !obs.accepted {
                continue;
            }
            let owner = reg_of(&obs.effective_domain);
            if obs.cookie.value.chars().count() >= options.min_value_len {
                out.entry(obs.cookie.value.clone())
                    .or_insert_with(|| (owner.clone(), idx));
            }
            if options.split_delimiters {
                for fragment in obs.cookie.value.split(['-', '=', '|', '.']) {
                    if fragment.chars().count() >= options.min_value_len {
                        out.entry(fragment.to_string())
                            .or_insert_with(|| (owner.clone(), idx));
                    }
                }
            }
        }
    }
    out
}

fn matches_inner(
    slice: CrawlSlice<'_>,
    regs: &SyncRegistrations,
    options: SyncOptions,
    hosts: Option<&HostCache>,
) -> SyncMatches {
    let reg_of = |host: &str| -> String {
        match hosts {
            Some(cache) => cache.registrable(host).to_string(),
            None => reg(host).to_string(),
        }
    };
    let mut out = SyncMatches::default();
    for (i, record) in slice.visits.iter().enumerate() {
        let idx = slice.offset + i;
        let mut synced_here = false;
        for req in &record.visit.requests {
            if req.url.query().is_none() {
                continue;
            }
            let dest_host = req.url.host().as_str();
            // Whole-value matching against decoded query parameter values:
            // a hash lookup per parameter keeps the scan linear at crawl
            // scale. Values hidden *inside* longer strings are missed — the
            // same lower-bound stance as the paper's no-delimiter-splitting
            // rule.
            for (_, value) in req.url.query_pairs() {
                let mut candidates: Vec<&str> = Vec::new();
                if value.chars().count() >= options.min_value_len {
                    candidates.push(value.as_str());
                }
                if options.split_delimiters {
                    candidates.extend(
                        value
                            .split(['-', '=', '|', '.'])
                            .filter(|f| f.chars().count() >= options.min_value_len),
                    );
                }
                for candidate in candidates {
                    let Some((owner, first_set)) = regs.get(candidate) else {
                        continue;
                    };
                    if *first_set > idx {
                        continue; // only set later in the session
                    }
                    let dest = reg_of(dest_host);
                    if same_site(owner, &dest) {
                        continue; // first-party echo, not a sync
                    }
                    *out.pairs
                        .entry(SyncPair {
                            origin: owner.clone(),
                            destination: dest,
                        })
                        .or_default() += 1;
                    synced_here = true;
                }
            }
        }
        if synced_here {
            out.sites.insert(slice.name(record.domain).to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_matches_paper_rules() {
        let o = SyncOptions::default();
        assert_eq!(o.min_value_len, 8);
        assert!(!o.split_delimiters, "paper: never split on delimiters");
    }

    #[test]
    fn heavy_pair_filter_orders_by_count() {
        let mut pairs = BTreeMap::new();
        pairs.insert(
            SyncPair {
                origin: "a.com".into(),
                destination: "b.com".into(),
            },
            100,
        );
        pairs.insert(
            SyncPair {
                origin: "c.com".into(),
                destination: "d.com".into(),
            },
            3,
        );
        let report = SyncReport {
            sites_with_sync: 2,
            pairs,
            origins: 2,
            destinations: 2,
            top_sites_with_sync_pct: 0.0,
        };
        let heavy = report.heavy_pairs(50);
        assert_eq!(heavy.len(), 1);
        assert_eq!(heavy[0].0.origin, "a.com");
    }
}
