//! Cross-border data flows (the paper's §10 future work, after Iordanou et
//! al., IMC'18).
//!
//! For a crawl from an EU vantage point, GDPR Chapter V restricts transfers
//! of personal data to third countries. This analysis geolocates each
//! contacted third-party server (via the geo-IP view the caller supplies)
//! and measures how much identifier-bearing traffic leaves the visitor's
//! jurisdiction. "Identifier-bearing" is approximated session-causally: a
//! request carries identifiers once its registrable domain has set a cookie
//! earlier in the session.

use std::collections::{BTreeMap, BTreeSet};

use redlight_net::geoip::Country;
use serde::{Deserialize, Serialize};

use crate::util::{pct, reg, same_site};
use redlight_crawler::db::CrawlRecord;

/// Geo-IP view of server locations.
pub type HostingResolver<'a> = &'a dyn Fn(&str) -> Country;

/// Cross-border findings for one crawl.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossBorderReport {
    /// Vantage-point country of the crawl.
    pub vantage: Country,
    /// Whether GDPR applies at the vantage point.
    pub gdpr_jurisdiction: bool,
    /// Successful third-party requests, total.
    pub third_party_requests: usize,
    /// Of those, requests to domains already holding an identifier cookie.
    pub identifier_bearing: usize,
    /// Identifier-bearing requests answered outside the jurisdiction
    /// (EU-leaving flows for an EU crawl).
    pub leaving_jurisdiction: usize,
    /// Leaving percentage.
    pub leaving_pct: f64,
    /// Identifier-bearing request volume by hosting country.
    pub by_destination: BTreeMap<Country, usize>,
    /// Distinct third-party domains receiving identifiers abroad.
    pub foreign_identifier_domains: usize,
}

/// Countries forming the GDPR jurisdiction in this model (EU member states
/// — Spain — plus the UK, which transposed the GDPR in 2018).
fn in_gdpr_zone(country: Country) -> bool {
    country.gdpr_applies()
}

/// Runs the analysis over one crawl.
pub fn report(crawl: &CrawlRecord, hosting: HostingResolver<'_>) -> CrossBorderReport {
    let vantage = crawl.country;
    let gdpr = in_gdpr_zone(vantage);

    // Registrable domains that have set a cookie so far in the session.
    let mut cookie_holders: BTreeSet<String> = BTreeSet::new();
    let mut third_party_requests = 0usize;
    let mut identifier_bearing = 0usize;
    let mut leaving = 0usize;
    let mut by_destination: BTreeMap<Country, usize> = BTreeMap::new();
    let mut foreign_domains: BTreeSet<String> = BTreeSet::new();

    for record in crawl.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let site_host = final_url.host().as_str().to_string();
        for obs in &record.visit.cookies {
            if obs.accepted {
                cookie_holders.insert(reg(&obs.effective_domain).to_string());
            }
        }
        for req in &record.visit.requests {
            if req.status.is_none() {
                continue;
            }
            let host = req.url.host().as_str();
            if same_site(host, &site_host) {
                continue;
            }
            third_party_requests += 1;
            let domain = reg(host).to_string();
            if !cookie_holders.contains(&domain) {
                continue;
            }
            identifier_bearing += 1;
            let destination = hosting(host);
            *by_destination.entry(destination).or_default() += 1;
            let crosses = if gdpr {
                !in_gdpr_zone(destination)
            } else {
                destination != vantage
            };
            if crosses {
                leaving += 1;
                foreign_domains.insert(domain);
            }
        }
    }

    CrossBorderReport {
        vantage,
        gdpr_jurisdiction: gdpr,
        third_party_requests,
        identifier_bearing,
        leaving_pct: pct(leaving, identifier_bearing.max(1)),
        leaving_jurisdiction: leaving,
        by_destination,
        foreign_identifier_domains: foreign_domains.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gdpr_zone_membership() {
        assert!(in_gdpr_zone(Country::Spain));
        assert!(in_gdpr_zone(Country::Uk));
        assert!(!in_gdpr_zone(Country::Usa));
        assert!(!in_gdpr_zone(Country::Russia));
    }
}
