//! Canvas and font fingerprinting detection (§5.1.3, Table 5).
//!
//! Canvas criteria (after Englehardt & Narayanan): the canvas is at least
//! 16×16 px; the script paints with at least two colors **or** draws text
//! with more than 10 distinct characters; the bitmap is read back via
//! `toDataURL` or a sufficiently large `getImageData`; and the script never
//! touches `save`, `restore` or `addEventListener` on the context (UI
//! widgets do, fingerprinters don't).
//!
//! Font fingerprinting uses the paper's stricter rule: the script sets the
//! `font` property and calls `measureText` on the **same text** at least 50
//! times.

use std::collections::{BTreeMap, BTreeSet};

use redlight_browser::canvas::CanvasActivity;
use serde::{Deserialize, Serialize};

use crate::ats::AtsVerdicts;
use crate::util::pct;
use redlight_crawler::db::CrawlRecord;
use redlight_crawler::store::CrawlSlice;

/// Minimum canvas edge (px).
pub const MIN_CANVAS_EDGE: u32 = 16;
/// Minimum `getImageData` area (px²) to count as a readback.
pub const MIN_READBACK_AREA: u32 = 320;
/// Minimum same-text `measureText` calls for font fingerprinting.
pub const MIN_MEASURE_CALLS: usize = 50;

/// Verdict for one script execution.
pub fn passes_canvas_criteria(activity: &CanvasActivity) -> bool {
    if activity.width < MIN_CANVAS_EDGE || activity.height < MIN_CANVAS_EDGE {
        return false;
    }
    if activity.fill_styles.len() < 2 && !activity.has_rich_text() {
        return false;
    }
    let readback = activity.to_data_url_calls > 0
        || activity
            .get_image_data
            .iter()
            .any(|(w, h)| w * h >= MIN_READBACK_AREA);
    if !readback {
        return false;
    }
    activity.save_calls == 0
        && activity.restore_calls == 0
        && activity.add_event_listener_calls == 0
}

/// Font-fingerprinting verdict: ≥ 50 `measureText` calls on one text, with
/// fonts being swapped.
pub fn passes_font_criteria(activity: &CanvasActivity) -> bool {
    if activity.fonts_set == 0 {
        return false;
    }
    let mut per_text: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, text) in &activity.measured {
        *per_text.entry(text.as_str()).or_default() += 1;
    }
    per_text.values().any(|&n| n >= MIN_MEASURE_CALLS)
}

/// Identity of a fingerprinting script: its URL, or `(site, inline)` for
/// first-party inline scripts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScriptId {
    /// Serving host (site itself for inline/first-party scripts).
    pub host: String,
    /// Path, or `"<inline>"`.
    pub path: String,
}

/// Aggregated fingerprinting findings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FingerprintReport {
    /// Distinct canvas-fingerprinting scripts.
    pub canvas_scripts: BTreeSet<ScriptId>,
    /// Sites on which at least one canvas script passed.
    pub canvas_sites: BTreeSet<String>,
    /// Third-party services (registrable domains) delivering canvas scripts.
    pub canvas_services: BTreeSet<String>,
    /// Fraction of canvas scripts delivered by third parties.
    pub third_party_script_pct: f64,
    /// Canvas scripts whose URL matches EasyList/EasyPrivacy in full.
    pub indexed_scripts: usize,
    /// Fraction of canvas scripts NOT indexed by the lists (the 91 %).
    pub unindexed_pct: f64,
    /// Font-fingerprinting scripts.
    pub font_scripts: BTreeSet<ScriptId>,
    /// Sites with font fingerprinting.
    pub font_sites: BTreeSet<String>,
    /// Executions that used canvas but failed the criteria (decoys filtered
    /// out — precision evidence).
    pub rejected_executions: usize,
}

/// One shard's partial fingerprinting tallies: the raw sets [`detect`]
/// accumulates, before any percentage is derived.
#[derive(Debug, Clone, Default)]
pub struct FingerprintScan {
    canvas_scripts: BTreeSet<ScriptId>,
    canvas_sites: BTreeSet<String>,
    canvas_services: BTreeSet<String>,
    third_party_scripts: BTreeSet<ScriptId>,
    indexed: BTreeSet<ScriptId>,
    font_scripts: BTreeSet<ScriptId>,
    font_sites: BTreeSet<String>,
    rejected: usize,
}

/// Runs the detector over a crawl.
pub fn detect(crawl: &CrawlRecord, ats: AtsVerdicts<'_>) -> FingerprintReport {
    finalize(scan(crawl.full(), ats))
}

/// The reduce side: set unions plus a rejected-execution sum.
pub fn merge(parts: impl IntoIterator<Item = FingerprintScan>) -> FingerprintScan {
    let mut out = FingerprintScan::default();
    for part in parts {
        out.canvas_scripts.extend(part.canvas_scripts);
        out.canvas_sites.extend(part.canvas_sites);
        out.canvas_services.extend(part.canvas_services);
        out.third_party_scripts.extend(part.third_party_scripts);
        out.indexed.extend(part.indexed);
        out.font_scripts.extend(part.font_scripts);
        out.font_sites.extend(part.font_sites);
        out.rejected += part.rejected;
    }
    out
}

/// Derives the ratio fields from the (merged) raw tallies.
pub fn finalize(scan: FingerprintScan) -> FingerprintReport {
    let total = scan.canvas_scripts.len().max(1);
    FingerprintReport {
        third_party_script_pct: pct(scan.third_party_scripts.len(), total),
        indexed_scripts: scan.indexed.len(),
        unindexed_pct: pct(total - scan.indexed.len(), total),
        canvas_scripts: scan.canvas_scripts,
        canvas_sites: scan.canvas_sites,
        canvas_services: scan.canvas_services,
        font_scripts: scan.font_scripts,
        font_sites: scan.font_sites,
        rejected_executions: scan.rejected,
    }
}

/// The map side: runs the detector over one shard.
pub fn scan(slice: CrawlSlice<'_>, ats: AtsVerdicts<'_>) -> FingerprintScan {
    let mut out = FingerprintScan::default();
    let FingerprintScan {
        canvas_scripts,
        canvas_sites,
        canvas_services,
        third_party_scripts,
        indexed,
        font_scripts,
        font_sites,
        rejected,
    } = &mut out;

    for record in slice.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let page_host = final_url.host().as_str();
        for (script_url, activity) in &record.visit.canvas {
            let id = match script_url {
                Some(u) => ScriptId {
                    host: u.host().as_str().to_string(),
                    path: u.path().to_string(),
                },
                None => ScriptId {
                    host: page_host.to_string(),
                    path: "<inline>".to_string(),
                },
            };
            let canvas_hit = passes_canvas_criteria(activity);
            let font_hit = passes_font_criteria(activity);
            if !canvas_hit && !font_hit {
                if activity.to_data_url_calls > 0 || !activity.texts.is_empty() {
                    *rejected += 1;
                }
                continue;
            }
            if canvas_hit {
                canvas_sites.insert(slice.name(record.domain).to_string());
                let hosts = ats.hosts();
                let third_party = !hosts.same_site(&id.host, page_host);
                if third_party {
                    canvas_services.insert(hosts.registrable(&id.host).to_string());
                    third_party_scripts.insert(id.clone());
                }
                if let Some(u) = script_url {
                    if ats.is_ats_url(
                        &u.without_fragment(),
                        page_host,
                        u.host().as_str(),
                        redlight_net::http::ResourceKind::Script,
                    ) {
                        indexed.insert(id.clone());
                    }
                }
                canvas_scripts.insert(id.clone());
            }
            if font_hit {
                font_scripts.insert(id.clone());
                font_sites.insert(slice.name(record.domain).to_string());
            }
        }
    }
    out
}

/// One Table 5 row: a third-party domain's fingerprinting footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Domain.
    pub domain: String,
    /// Porn sites where the domain appears (any role).
    pub presence: usize,
    /// Is ATS.
    pub is_ats: bool,
    /// In regular web.
    pub in_regular_web: bool,
    /// Canvas scripts.
    pub canvas_scripts: usize,
    /// Webrtc scripts.
    pub webrtc_scripts: usize,
}

/// Builds Table 5 from the fingerprint + WebRTC reports and third-party
/// presence data.
pub fn table5(
    fp: &FingerprintReport,
    rtc: &crate::webrtc::WebRtcReport,
    porn_extract: &crate::thirdparty::ThirdPartyExtract,
    regular_extract: &crate::thirdparty::ThirdPartyExtract,
    ats: AtsVerdicts<'_>,
    top_n: usize,
) -> Vec<Table5Row> {
    let hosts = ats.hosts();
    let mut domains: BTreeSet<String> = BTreeSet::new();
    for s in &fp.canvas_scripts {
        domains.insert(hosts.registrable(&s.host).to_string());
    }
    for s in &rtc.scripts {
        domains.insert(hosts.registrable(&s.host).to_string());
    }
    // Keep only third-party domains (inline/first-party hosts are porn
    // sites themselves).
    let mut rows: Vec<Table5Row> = domains
        .into_iter()
        .filter(|d| porn_extract.sites_with_registrable(d) > 0)
        .map(|domain| {
            let canvas = fp
                .canvas_scripts
                .iter()
                .filter(|s| hosts.registrable(&s.host) == domain)
                .count();
            let webrtc = rtc
                .scripts
                .iter()
                .filter(|s| hosts.registrable(&s.host) == domain)
                .count();
            Table5Row {
                presence: porn_extract.sites_with_registrable(&domain),
                is_ats: ats.is_ats_fqdn(&domain),
                in_regular_web: regular_extract
                    .third_party_fqdns
                    .iter()
                    .any(|f| hosts.registrable(f) == domain),
                canvas_scripts: canvas,
                webrtc_scripts: webrtc,
                domain,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.presence.cmp(&a.presence).then(a.domain.cmp(&b.domain)));
    rows.truncate(top_n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_activity() -> CanvasActivity {
        let mut a = CanvasActivity {
            width: 240,
            height: 60,
            to_data_url_calls: 1,
            ..Default::default()
        };
        a.fill_style("#f60");
        a.fill_style("#0af");
        a.texts.push("Cwm fjordbank glyphs vext quiz".into());
        a
    }

    #[test]
    fn englehardt_criteria_pass_and_fail() {
        assert!(passes_canvas_criteria(&fp_activity()));

        // Too small.
        let mut small = fp_activity();
        small.width = 12;
        assert!(!passes_canvas_criteria(&small));

        // No readback.
        let mut no_read = fp_activity();
        no_read.to_data_url_calls = 0;
        assert!(!passes_canvas_criteria(&no_read));

        // getImageData readback with enough area counts.
        no_read.get_image_data.push((20, 20));
        assert!(passes_canvas_criteria(&no_read));
        // …but a tiny readback does not.
        let mut tiny_read = fp_activity();
        tiny_read.to_data_url_calls = 0;
        tiny_read.get_image_data.push((4, 4));
        assert!(!passes_canvas_criteria(&tiny_read));

        // save/restore/addEventListener disqualify.
        let mut ui = fp_activity();
        ui.save_calls = 1;
        assert!(!passes_canvas_criteria(&ui));
        let mut ui2 = fp_activity();
        ui2.add_event_listener_calls = 1;
        assert!(!passes_canvas_criteria(&ui2));
    }

    #[test]
    fn single_color_needs_rich_text() {
        let mut a = fp_activity();
        a.fill_styles = vec!["#000".into()];
        assert!(passes_canvas_criteria(&a), "rich text compensates");
        a.texts = vec!["short".into()];
        assert!(!passes_canvas_criteria(&a));
    }

    #[test]
    fn font_rule_needs_50_same_text_measures() {
        let mut a = CanvasActivity {
            fonts_set: 56,
            ..Default::default()
        };
        for i in 0..56 {
            a.measured
                .push((format!("probe-font-{i}"), "mmmmmmmmmmlli".to_string()));
        }
        assert!(passes_font_criteria(&a));

        // 49 calls: below threshold.
        a.measured.truncate(49);
        assert!(!passes_font_criteria(&a));

        // 60 calls but on different texts.
        let mut b = CanvasActivity {
            fonts_set: 60,
            ..Default::default()
        };
        for i in 0..60 {
            b.measured.push((format!("f{i}"), format!("text{i}")));
        }
        assert!(!passes_font_criteria(&b));

        // Never set a font: not font fingerprinting.
        let mut c = a.clone();
        c.fonts_set = 0;
        assert!(!passes_font_criteria(&c));
    }
}
