//! Cross-module integration tests for the analysis layer, driven by a tiny
//! synthetic world (websim is a dev-dependency here; production analysis
//! code never touches it).

use std::collections::BTreeSet;

use redlight_analysis::{ats, cookies, geo, https, popularity, sync, thirdparty, ThreatFeed};
use redlight_crawler::corpus::CorpusCompiler;
use redlight_crawler::db::{CorpusLabel, CrawlRecord};
use redlight_crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight_net::geoip::Country;
use redlight_websim::{World, WorldConfig};

fn crawl(world: &World, domains: &[String], country: Country) -> CrawlRecord {
    OpenWpmCrawler::new(
        world,
        CrawlConfig {
            country,
            corpus: CorpusLabel::Porn,
            store_dom: true,
        },
    )
    .crawl(domains)
}

struct Feed<'w>(&'w World);
impl ThreatFeed for Feed<'_> {
    fn detections(&self, domain: &str) -> u8 {
        self.0
            .scanners
            .detections(domain, self.0.truly_malicious(domain))
    }
}

#[test]
fn table3_tier_rows_partition_the_corpus() {
    let world = World::build(WorldConfig::tiny(41));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, Country::Spain);
    let extract = thirdparty::extract(&record, true);
    let tiers = popularity::tiers_from_histories(&world.rank_histories());
    let t3 = popularity::table3(&extract, &tiers);

    let site_sum: usize = t3.rows.iter().map(|r| r.sites).sum();
    assert_eq!(site_sum, record.success_count(), "tiers partition sites");

    // Unique counts sum to at most the distinct third-party population.
    let unique_sum: usize = t3.rows.iter().map(|r| r.third_party_unique).sum();
    assert!(unique_sum <= extract.third_party_fqdns.len());
}

#[test]
fn https_report_bounds_and_tier_partition() {
    let world = World::build(WorldConfig::tiny(43));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, Country::Spain);
    let tiers = popularity::tiers_from_histories(&world.rank_histories());
    let report = https::report(&record, &tiers, std::net::Ipv4Addr::new(203, 0, 113, 77));
    let site_sum: usize = report.rows.iter().map(|r| r.sites).sum();
    assert_eq!(site_sum, record.success_count());
    for row in &report.rows {
        assert!((0.0..=100.0).contains(&row.sites_https_pct));
        assert!((0.0..=100.0).contains(&row.third_party_https_pct));
    }
    assert!(report.not_fully_https <= record.success_count());
    assert!(report.clear_cookie_sites <= report.not_fully_https);
}

#[test]
fn geo_summaries_reflect_country_gating() {
    let world = World::build(WorldConfig::tiny(47));
    let corpus = CorpusCompiler::new(&world).compile();
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);
    let feed = Feed(&world);

    let ru = geo::summarize(
        &crawl(&world, &corpus.sanitized, Country::Russia),
        ats::AtsVerdicts::new(&classifier),
        &feed,
    );
    let es = geo::summarize(
        &crawl(&world, &corpus.sanitized, Country::Spain),
        ats::AtsVerdicts::new(&classifier),
        &feed,
    );

    // Russia-exclusive ATS must be observable from Russia only.
    let ru_only_fqdns: BTreeSet<&str> = world
        .services
        .iter()
        .filter(|s| s.countries.as_deref() == Some(&[Country::Russia][..]))
        .map(|s| s.fqdn.as_str())
        .collect();
    let ru_seen = ru_only_fqdns.iter().any(|f| ru.fqdns.contains(*f));
    let es_seen = ru_only_fqdns.iter().any(|f| es.fqdns.contains(*f));
    if ru_seen {
        assert!(
            !es_seen,
            "RU-exclusive services leaked into the Spanish crawl"
        );
    }

    // Sites blocked in Russia are unreachable there but crawlable from Spain.
    let blocked: Vec<&str> = world
        .sites
        .iter()
        .filter(|s| s.is_porn() && s.blocked_in.contains(&Country::Russia) && !s.openwpm_timeout)
        .map(|s| s.domain.as_str())
        .collect();
    if !blocked.is_empty() {
        assert!(ru.unreachable_sites >= blocked.len());
        assert!(es.crawled_sites >= ru.crawled_sites);
    }

    let t7 = geo::table7(&[es, ru], &BTreeSet::new());
    assert_eq!(t7.rows.len(), 2);
    assert!(t7.total_fqdns >= t7.rows.iter().map(|r| r.fqdns).max().unwrap());
}

#[test]
fn cookie_pipeline_consistency_with_jar_semantics() {
    let world = World::build(WorldConfig::tiny(53));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, Country::Spain);
    let rows = cookies::collect(&record);

    // No duplicate (site, domain, name) rows.
    let mut seen = BTreeSet::new();
    for r in &rows {
        assert!(
            seen.insert((r.site.clone(), r.domain.clone(), r.name.clone())),
            "duplicate cookie row"
        );
    }
    // Third-party rows never share the site's registrable domain.
    for r in rows.iter().filter(|r| r.third_party) {
        assert_ne!(redlight_net::psl::registrable_domain(&r.site), r.domain);
    }
    // The ExoClick family delivers base64 IP payloads decodable by the
    // pipeline.
    let ip = std::net::Ipv4Addr::new(203, 0, 113, 77);
    let exo_ip_rows = rows
        .iter()
        .filter(|r| r.domain.contains("exo"))
        .filter(|r| cookies::embeds_ip(&r.value, ip))
        .count();
    assert!(exo_ip_rows > 0, "ExoClick IP-embedding cookies must decode");
}

#[test]
fn sync_report_respects_session_causality() {
    let world = World::build(WorldConfig::tiny(59));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, Country::Spain);
    let report = sync::detect(&record, &corpus.sanitized, 50);
    // Origins/destinations tallies match the pair set.
    let origins: BTreeSet<&str> = report.pairs.keys().map(|p| p.origin.as_str()).collect();
    let dests: BTreeSet<&str> = report
        .pairs
        .keys()
        .map(|p| p.destination.as_str())
        .collect();
    assert_eq!(origins.len(), report.origins);
    assert_eq!(dests.len(), report.destinations);
    assert!((0.0..=100.0).contains(&report.top_sites_with_sync_pct));
}

#[test]
fn relaxed_vs_full_ats_matching_diverge_as_designed() {
    let world = World::build(WorldConfig::tiny(61));
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);
    // Path-only coverage: domain flagged, fingerprint script URL clean.
    assert!(classifier.is_ats_fqdn("adnium.com"));
    assert!(!classifier.is_ats_url(
        "https://adnium.com/fp/v1.js",
        "some.porn",
        "adnium.com",
        redlight_net::http::ResourceKind::Script
    ));
    // Domain-wide coverage: both match.
    assert!(classifier.is_ats_fqdn("exoclick.com"));
    assert!(classifier.is_ats_url(
        "https://exoclick.com/tag/v1.js",
        "some.porn",
        "exoclick.com",
        redlight_net::http::ResourceKind::Script
    ));
    // Unlisted fingerprinters stay invisible to both (the §5.1.3 gap).
    assert!(!classifier.is_ats_fqdn("xcvgdf.party"));
}
