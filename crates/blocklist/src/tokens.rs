//! Token extraction for the indexed matcher (adblock-rust style).
//!
//! The idea: most filter patterns contain a fixed alphanumeric substring
//! ("token") that *must* appear in any URL the pattern matches — e.g.
//! `/adserver/*` can only match URLs containing `adserver`. Bucketing rules
//! by a hash of one such token and tokenizing each URL once means a lookup
//! only evaluates rules that share a token with the URL, instead of scanning
//! every generic rule.
//!
//! Correctness hinges on picking *safe* tokens only. A run of `[a-z0-9]`
//! pattern bytes is safe when it is guaranteed to appear as a **maximal**
//! alphanumeric run in every matching URL:
//!
//! * its left neighbour is a literal non-`*` pattern byte (necessarily
//!   non-alphanumeric, the run is maximal in the pattern) or the pattern
//!   start of a start-anchored rule — `^` qualifies, because when it matches
//!   it consumes a separator (it can only consume nothing at the *end* of
//!   input, which cannot precede the run);
//! * symmetrically, its right neighbour is a literal non-`*` byte or the
//!   pattern end of an end-anchored rule (`^` again qualifies: consuming
//!   nothing means end-of-input, so the run sits at the URL's end).
//!
//! Runs adjacent to `*`, or touching an unanchored pattern edge, may appear
//! mid-run in a URL (`ads` matches inside `loads`), so rules without any
//! safe run fall back to an always-scanned list. Everything is compared
//! ASCII-lowercased, mirroring the matcher's case-insensitivity.

/// FNV-1a over `bytes` with each byte ASCII-lowercased.
pub fn hash_token(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b.to_ascii_lowercase() as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends the hash of every maximal `[A-Za-z0-9]` run in `url` to `out`
/// (cleared first). One pass, no allocation beyond `out`'s capacity.
pub fn url_token_hashes(url: &str, out: &mut Vec<u64>) {
    out.clear();
    let bytes = url.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphanumeric() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
            }
            out.push(hash_token(&bytes[start..i]));
        } else {
            i += 1;
        }
    }
}

/// Minimum token length worth indexing: 1-byte tokens appear in virtually
/// every URL, so their buckets would be scanned on every lookup anyway.
const MIN_TOKEN_LEN: usize = 2;

/// Picks the best safe token of `pattern` and returns its hash, or `None`
/// when the pattern has no safe run (the rule must be scanned always).
/// The longest safe run wins — longer tokens are rarer in URLs, keeping
/// buckets small.
pub fn pattern_token(pattern: &str, start_anchor: bool, end_anchor: bool) -> Option<u64> {
    let bytes = pattern.as_bytes();
    let mut best: Option<&[u8]> = None;
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_alphanumeric() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        let run = &bytes[start..i];
        let safe_left = if start == 0 {
            start_anchor
        } else {
            bytes[start - 1] != b'*'
        };
        let safe_right = if i == bytes.len() {
            end_anchor
        } else {
            bytes[i] != b'*'
        };
        if safe_left
            && safe_right
            && run.len() >= MIN_TOKEN_LEN
            && best.is_none_or(|b| run.len() > b.len())
        {
            best = Some(run);
        }
    }
    best.map(hash_token)
}

/// The longest maximal alphanumeric run of `pattern` (≥ [`MIN_TOKEN_LEN`]),
/// or `None` when the pattern has no such run.
///
/// Unlike [`pattern_token`], no anchoring/safety conditions apply: the run
/// need not be maximal *in the URL*, it only has to appear as a contiguous
/// case-insensitive substring. That weaker guarantee always holds — every
/// literal pattern byte consumes exactly one URL byte, and neither `*` nor
/// `^` can interrupt a literal run — which is exactly what the Aho-Corasick
/// prefilter ([`crate::prefilter`]) needs to prune always-scan rules.
pub fn pattern_substring(pattern: &str) -> Option<&str> {
    let bytes = pattern.as_bytes();
    let mut best: Option<(usize, usize)> = None;
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_alphanumeric() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
            i += 1;
        }
        if i - start >= MIN_TOKEN_LEN && best.is_none_or(|(s, e)| i - start > e - s) {
            best = Some((start, i));
        }
    }
    best.map(|(s, e)| &pattern[s..e])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urls_tokens(url: &str) -> Vec<u64> {
        let mut v = Vec::new();
        url_token_hashes(url, &mut v);
        v
    }

    #[test]
    fn hashing_is_case_insensitive() {
        assert_eq!(hash_token(b"AdServer"), hash_token(b"adserver"));
        assert_ne!(hash_token(b"adserver"), hash_token(b"adserver2"));
    }

    #[test]
    fn url_tokenization_finds_maximal_runs() {
        let toks = urls_tokens("https://x.net/adserver/300.js");
        assert!(toks.contains(&hash_token(b"adserver")));
        assert!(toks.contains(&hash_token(b"https")));
        assert!(toks.contains(&hash_token(b"300")));
        assert!(toks.contains(&hash_token(b"js")));
        // "adserver" is one maximal run — its pieces are not tokens.
        assert!(!toks.contains(&hash_token(b"ads")));
    }

    #[test]
    fn delimited_runs_are_safe() {
        // `/adserver/` — both sides are literal separators.
        let t = pattern_token("/adserver/", false, false).expect("safe token");
        assert_eq!(t, hash_token(b"adserver"));
    }

    #[test]
    fn wildcard_neighbours_are_unsafe() {
        // `*ads*` — "ads" could appear mid-run ("loads").
        assert_eq!(pattern_token("*ads*", false, false), None);
        // `/banner/*/img^`: "banner" is delimited, "img" touches `*`.
        let t = pattern_token("/banner/*/img^", false, false).expect("banner is safe");
        assert_eq!(t, hash_token(b"banner"));
    }

    #[test]
    fn pattern_edges_need_anchors() {
        // Unanchored "pixel" could match inside "subpixel3".
        assert_eq!(pattern_token("pixel", false, false), None);
        assert_eq!(
            pattern_token("pixel", true, true),
            Some(hash_token(b"pixel"))
        );
        // `|https://cdn.` — "https" is safe-left via the start anchor,
        // "cdn" is delimited by literals.
        let t = pattern_token("https://cdn.", true, false).expect("safe");
        assert_eq!(t, hash_token(b"https"));
    }

    #[test]
    fn separator_placeholder_is_a_safe_boundary() {
        // `^track^` — `^` consumes a separator (or end of input on the
        // right), so "track" stays a maximal run in the URL.
        assert_eq!(
            pattern_token("^track^", false, false),
            Some(hash_token(b"track"))
        );
    }

    #[test]
    fn longest_safe_run_wins() {
        let t = pattern_token("/ad/analytics/", false, false).expect("safe");
        assert_eq!(t, hash_token(b"analytics"));
    }

    #[test]
    fn single_byte_runs_are_not_indexed() {
        assert_eq!(pattern_token("/a/", false, false), None);
    }

    #[test]
    fn pattern_substring_ignores_safety() {
        // `*ads*` has no *safe* token, but "ads" is still a required
        // substring of any match.
        assert_eq!(pattern_token("*ads*", false, false), None);
        assert_eq!(pattern_substring("*ads*"), Some("ads"));
        // Longest run wins; runs below MIN_TOKEN_LEN are skipped.
        assert_eq!(pattern_substring("*a*banner*x*"), Some("banner"));
        assert_eq!(pattern_substring("*a*"), None);
        assert_eq!(pattern_substring("^^*"), None);
    }
}
