//! The pre-index linear matcher, retained as a reference implementation.
//!
//! [`LinearFilterSet`] is the matcher as it existed before the token index:
//! domain-anchored rules bucketed by registrable domain, every generic rule
//! scanned per URL, every exception scanned once a blocking rule matches,
//! and the allocating `format!`-based relaxed-FQDN check. It exists for two
//! consumers:
//!
//! * the equivalence property test, which asserts the indexed
//!   [`crate::FilterSet`] returns verdict-for-verdict identical
//!   [`MatchResult`]s;
//! * the `ats_match` benchmark, where it is the "before" baseline the token
//!   index is measured against.
//!
//! Keep this implementation boring and unoptimized — its value is being an
//! obviously-correct oracle.

use std::collections::HashMap;

use redlight_net::psl;

use crate::filter::{Filter, RequestContext};
use crate::matcher::MatchResult;

/// The reference filter set: correct, linear, slow.
#[derive(Debug, Clone, Default)]
pub struct LinearFilterSet {
    /// Domain-anchored rules, indexed by the anchor's registrable domain.
    by_domain: HashMap<String, Vec<Filter>>,
    /// Rules without a domain anchor (substring / start-anchored).
    generic: Vec<Filter>,
    /// Exception rules (`@@`), all kept together and always scanned.
    exceptions: Vec<Filter>,
    /// Number of rule lines parsed.
    rule_count: usize,
}

impl LinearFilterSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a list text and merges its rules (comments, metadata and
    /// element-hiding rules are skipped). Returns how many rules were added.
    pub fn add_list(&mut self, text: &str) -> usize {
        let mut added = 0;
        for line in text.lines() {
            if let Ok(f) = Filter::parse(line) {
                self.add_filter(f);
                added += 1;
            }
        }
        added
    }

    /// Adds one parsed filter.
    pub fn add_filter(&mut self, filter: Filter) {
        self.rule_count += 1;
        if filter.exception {
            self.exceptions.push(filter);
            return;
        }
        match &filter.anchor_domain {
            Some(anchor) => {
                let key = psl::registrable_domain(anchor).to_string();
                self.by_domain.entry(key).or_default().push(filter);
            }
            None => self.generic.push(filter),
        }
    }

    /// Total number of rules (blocking + exceptions).
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// `true` when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Matches a full URL in context, applying exception rules.
    pub fn matches(&self, url: &str, ctx: &RequestContext<'_>) -> MatchResult {
        let blocked = self.first_blocking_match(url, ctx);
        match blocked {
            None => MatchResult::Clean,
            Some(rule) => {
                for exc in &self.exceptions {
                    if exc.matches(url, ctx) {
                        return MatchResult::Excepted(exc.raw.clone());
                    }
                }
                MatchResult::Blocked(rule.raw.clone())
            }
        }
    }

    fn first_blocking_match(&self, url: &str, ctx: &RequestContext<'_>) -> Option<&Filter> {
        let key = psl::registrable_domain(ctx.request_host);
        if let Some(rules) = self.by_domain.get(key) {
            if let Some(f) = rules.iter().find(|f| f.matches(url, ctx)) {
                return Some(f);
            }
        }
        self.generic.iter().find(|f| f.matches(url, ctx))
    }

    /// Relaxed FQDN matching, including the original per-candidate-rule
    /// `format!` allocations (part of the measured baseline).
    pub fn matches_fqdn_relaxed(&self, fqdn: &str) -> bool {
        let fqdn = fqdn.to_ascii_lowercase();
        let key = psl::registrable_domain(&fqdn);
        self.by_domain.get(key).is_some_and(|rules| {
            rules.iter().any(|f| {
                f.anchor_domain.as_deref().is_some_and(|anchor| {
                    let domain_wide = f.pattern.is_empty() || f.pattern == "^";
                    if domain_wide {
                        fqdn == anchor
                            || fqdn.ends_with(&format!(".{anchor}"))
                            || anchor.ends_with(&format!(".{fqdn}"))
                    } else {
                        fqdn == anchor
                    }
                })
            })
        })
    }
}
