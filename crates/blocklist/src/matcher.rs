//! Indexed filter matching over whole lists.
//!
//! [`FilterSet`] holds parsed rules from one or more lists (EasyList +
//! EasyPrivacy in the study), indexes domain-anchored rules by their anchor's
//! registrable domain, and answers:
//!
//! * [`FilterSet::matches`] — full-URL matching with exception handling, the
//!   §4.2(2) classification;
//! * [`FilterSet::matches_fqdn_relaxed`] — the paper's relaxed variant that
//!   only considers the base FQDN, used to count ATS organizations.

use std::collections::HashMap;

use redlight_net::psl;

use crate::filter::{Filter, RequestContext};

/// Outcome of matching a URL against a filter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchResult {
    /// A blocking rule matched (rule text attached).
    Blocked(String),
    /// An exception rule overrode a blocking match.
    Excepted(String),
    /// Nothing matched.
    Clean,
}

impl MatchResult {
    /// `true` only for [`MatchResult::Blocked`].
    pub fn is_blocked(&self) -> bool {
        matches!(self, MatchResult::Blocked(_))
    }
}

/// A parsed, indexed collection of filter rules.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    /// Domain-anchored rules, indexed by the anchor's registrable domain.
    by_domain: HashMap<String, Vec<Filter>>,
    /// Rules without a domain anchor (substring / start-anchored).
    generic: Vec<Filter>,
    /// Exception rules (`@@`), all kept together: exceptions are rare.
    exceptions: Vec<Filter>,
    /// Number of rule lines parsed.
    rule_count: usize,
}

impl FilterSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a list text and merges its rules (comments, metadata and
    /// element-hiding rules are skipped). Returns how many rules were added.
    pub fn add_list(&mut self, text: &str) -> usize {
        let mut added = 0;
        for line in text.lines() {
            if let Ok(f) = Filter::parse(line) {
                self.add_filter(f);
                added += 1;
            }
        }
        added
    }

    /// Adds one parsed filter.
    pub fn add_filter(&mut self, filter: Filter) {
        self.rule_count += 1;
        if filter.exception {
            self.exceptions.push(filter);
            return;
        }
        match &filter.anchor_domain {
            Some(anchor) => {
                let key = psl::registrable_domain(anchor).to_string();
                self.by_domain.entry(key).or_default().push(filter);
            }
            None => self.generic.push(filter),
        }
    }

    /// Total number of rules (blocking + exceptions).
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// `true` when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Matches a full URL in context, applying exception rules.
    pub fn matches(&self, url: &str, ctx: &RequestContext<'_>) -> MatchResult {
        let blocked = self.first_blocking_match(url, ctx);
        match blocked {
            None => MatchResult::Clean,
            Some(rule) => {
                for exc in &self.exceptions {
                    if exc.matches(url, ctx) {
                        return MatchResult::Excepted(exc.raw.clone());
                    }
                }
                MatchResult::Blocked(rule.raw.clone())
            }
        }
    }

    fn first_blocking_match(&self, url: &str, ctx: &RequestContext<'_>) -> Option<&Filter> {
        let key = psl::registrable_domain(ctx.request_host);
        if let Some(rules) = self.by_domain.get(key) {
            if let Some(f) = rules.iter().find(|f| f.matches(url, ctx)) {
                return Some(f);
            }
        }
        self.generic.iter().find(|f| f.matches(url, ctx))
    }

    /// The paper's relaxed matching: is this FQDN covered by a rule's domain
    /// anchor? Domain-wide rules (`||anchor^` with no path) cover the anchor
    /// and its subdomains; path rules only flag the anchored host itself —
    /// a path rule on `cloudfront.net` marks `cloudfront.net` as ATS but
    /// does not taint every customer's `dxxxx.cloudfront.net` bucket.
    pub fn matches_fqdn_relaxed(&self, fqdn: &str) -> bool {
        let fqdn = fqdn.to_ascii_lowercase();
        let key = psl::registrable_domain(&fqdn);
        self.by_domain.get(key).is_some_and(|rules| {
            rules.iter().any(|f| {
                f.anchor_domain.as_deref().is_some_and(|anchor| {
                    let domain_wide = f.pattern.is_empty() || f.pattern == "^";
                    if domain_wide {
                        fqdn == anchor
                            || fqdn.ends_with(&format!(".{anchor}"))
                            || anchor.ends_with(&format!(".{fqdn}"))
                    } else {
                        fqdn == anchor
                    }
                })
            })
        })
    }

    /// All anchor domains in the set (used to compute list coverage).
    pub fn anchor_domains(&self) -> impl Iterator<Item = &str> {
        self.by_domain
            .values()
            .flatten()
            .filter_map(|f| f.anchor_domain.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::http::ResourceKind;

    const LIST: &str = r#"
! EasyList-style test list
[Adblock Plus 2.0]
||exoclick.com^
||exosrv.com^$third-party
||doublepimp.com^
||bbc.co.uk/analytics
/adserver/*$script
@@||exoclick.com/allowed.js$script
example.com##.banner
"#;

    fn set() -> FilterSet {
        let mut s = FilterSet::new();
        let added = s.add_list(LIST);
        assert_eq!(added, 6, "6 URL rules (cosmetic + comments skipped)");
        s
    }

    fn ctx<'a>(page: &'a str, req: &'a str) -> RequestContext<'a> {
        RequestContext::new(page, req, ResourceKind::Script)
    }

    #[test]
    fn blocks_anchored_domains() {
        let s = set();
        assert!(s
            .matches(
                "https://main.exoclick.com/tag.js",
                &ctx("porn.site", "main.exoclick.com")
            )
            .is_blocked());
        assert_eq!(
            s.matches(
                "https://clean.cdn.com/lib.js",
                &ctx("porn.site", "clean.cdn.com")
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn exception_overrides_block() {
        let s = set();
        let r = s.matches(
            "https://exoclick.com/allowed.js",
            &ctx("porn.site", "exoclick.com"),
        );
        assert!(matches!(r, MatchResult::Excepted(_)));
    }

    #[test]
    fn third_party_rule_spares_first_party() {
        let s = set();
        assert!(s
            .matches(
                "https://sync.exosrv.com/pixel",
                &ctx("porn.site", "sync.exosrv.com")
            )
            .is_blocked());
        assert_eq!(
            s.matches(
                "https://sync.exosrv.com/pixel",
                &ctx("www.exosrv.com", "sync.exosrv.com")
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn path_only_rule_needs_the_path() {
        let s = set();
        assert!(s
            .matches("https://bbc.co.uk/analytics/b", &ctx("a.com", "bbc.co.uk"))
            .is_blocked());
        assert_eq!(
            s.matches("https://bbc.co.uk/news", &ctx("a.com", "bbc.co.uk")),
            MatchResult::Clean
        );
    }

    #[test]
    fn generic_substring_rule() {
        let s = set();
        assert!(s
            .matches("https://x.net/adserver/300.js", &ctx("a.com", "x.net"))
            .is_blocked());
        // $script option: images do not match.
        assert_eq!(
            s.matches(
                "https://x.net/adserver/300.gif",
                &RequestContext::new("a.com", "x.net", ResourceKind::Image)
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn relaxed_fqdn_matching() {
        let s = set();
        assert!(s.matches_fqdn_relaxed("exoclick.com"));
        assert!(s.matches_fqdn_relaxed("sync.exoclick.com"));
        assert!(s.matches_fqdn_relaxed("EXOSRV.com"));
        // bbc rule is a path rule anchoring bbc.co.uk: the host itself is
        // flagged, but sibling subdomains are not.
        assert!(s.matches_fqdn_relaxed("bbc.co.uk"));
        assert!(!s.matches_fqdn_relaxed("video.bbc.co.uk"));
        assert!(!s.matches_fqdn_relaxed("cleancdn.net"));
    }

    #[test]
    fn empty_set_is_clean() {
        let s = FilterSet::new();
        assert!(s.is_empty());
        assert_eq!(
            s.matches("https://anything.com/x", &ctx("a.com", "anything.com")),
            MatchResult::Clean
        );
        assert!(!s.matches_fqdn_relaxed("anything.com"));
    }
}
