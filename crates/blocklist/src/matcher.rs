//! Indexed filter matching over whole lists.
//!
//! [`FilterSet`] holds parsed rules from one or more lists (EasyList +
//! EasyPrivacy in the study) behind a two-tier index and answers:
//!
//! * [`FilterSet::matches`] — full-URL matching with exception handling, the
//!   §4.2(2) classification;
//! * [`FilterSet::matches_fqdn_relaxed`] — the paper's relaxed variant that
//!   only considers the base FQDN, used to count ATS organizations.
//!
//! # Index structure
//!
//! * **Tier 1 — domain buckets.** Domain-anchored rules (`||anchor^…`) can
//!   only match requests whose host sits under the anchor, so they are
//!   bucketed by the anchor's registrable domain and looked up by the
//!   request host's registrable domain.
//! * **Tier 2 — token buckets.** Generic rules are bucketed by a hash of a
//!   *safe* fixed substring of their pattern (see [`crate::tokens`]); a
//!   lookup tokenizes the URL once and only evaluates rules sharing a
//!   token. Rules without a safe token live in a small always-scanned list.
//! * **Tier 3 — Aho-Corasick prefilter.** The always-scanned lists are
//!   pruned by a multi-pattern substring scan ([`crate::prefilter`]): each
//!   scan rule's longest alphanumeric run is a *required* substring of any
//!   match, so one automaton pass over the URL skips every scan rule whose
//!   required token is absent. Built on demand by
//!   [`FilterSet::build_prefilter`].
//!
//! Exception rules get the same treatment (domain buckets + token buckets),
//! with one guard: an anchored exception whose anchor *is itself* a public
//! suffix (`@@||co.uk^…`) covers hosts across many registrable domains, so
//! it stays in the always-scanned list.
//!
//! Candidates gathered from several buckets are evaluated in insertion
//! order, so the first matching rule — and therefore every returned
//! [`MatchResult`] — is byte-identical to the retained linear reference
//! matcher ([`crate::linear::LinearFilterSet`]), which the equivalence
//! property test enforces.

use std::borrow::Cow;
use std::collections::HashMap;

use redlight_net::psl;
use redlight_obs::Counter;

use crate::filter::{Filter, RequestContext};
use crate::prefilter::{TokenHits, TokenPrefilter};
use crate::tokens;

/// Outcome of matching a URL against a filter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchResult {
    /// A blocking rule matched (rule text attached).
    Blocked(String),
    /// An exception rule overrode a blocking match.
    Excepted(String),
    /// Nothing matched.
    Clean,
}

impl MatchResult {
    /// `true` only for [`MatchResult::Blocked`].
    pub fn is_blocked(&self) -> bool {
        matches!(self, MatchResult::Blocked(_))
    }
}

/// A parsed, indexed collection of filter rules.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    /// Domain-anchored blocking rules, bucketed by the anchor's registrable
    /// domain (tier 1).
    by_domain: HashMap<String, Vec<Filter>>,
    /// Blocking rules without a domain anchor, in insertion order.
    generic: Vec<Filter>,
    /// Token hash → indices into `generic` (tier 2).
    generic_tokens: HashMap<u64, Vec<u32>>,
    /// Indices of generic rules without a safe token: always evaluated.
    generic_scan: Vec<u32>,
    /// Exception rules (`@@`), all of them, in insertion order.
    exceptions: Vec<Filter>,
    /// Anchored exceptions, bucketed by the anchor's registrable domain.
    exc_by_domain: HashMap<String, Vec<u32>>,
    /// Token hash → indices into `exceptions`.
    exc_tokens: HashMap<u64, Vec<u32>>,
    /// Exception indices that must always be evaluated (no safe token, or
    /// anchored on a public suffix).
    exc_scan: Vec<u32>,
    /// Tier-3 Aho-Corasick prefilter over the two scan lists; `None` until
    /// [`FilterSet::build_prefilter`] runs (rules added later are not
    /// covered, so the builder must be re-run after further `add_list`s).
    prefilter: Option<ScanPrefilter>,
    /// Scan-rule evaluations skipped because the required token was absent.
    prefilter_hits: Counter,
    /// Scan-rule evaluations the prefilter could not rule out.
    prefilter_misses: Counter,
    /// Number of rule lines parsed.
    rule_count: usize,
}

/// The compiled tier-3 state: one automaton over all distinct required
/// tokens plus, for each entry of the two scan lists, the token id that
/// must occur for the rule to possibly match (`None` ⇒ always evaluate).
#[derive(Debug, Clone, Default)]
struct ScanPrefilter {
    automaton: TokenPrefilter,
    /// Parallel to `generic_scan`.
    generic_required: Vec<Option<u32>>,
    /// Parallel to `exc_scan`.
    exc_required: Vec<Option<u32>>,
}

impl FilterSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a list text and merges its rules (comments, metadata and
    /// element-hiding rules are skipped). Returns how many rules were added.
    pub fn add_list(&mut self, text: &str) -> usize {
        let mut added = 0;
        for line in text.lines() {
            if let Ok(f) = Filter::parse(line) {
                self.add_filter(f);
                added += 1;
            }
        }
        added
    }

    /// Adds one parsed filter to the appropriate index tier.
    pub fn add_filter(&mut self, filter: Filter) {
        self.rule_count += 1;
        if filter.exception {
            let idx = self.exceptions.len() as u32;
            match filter.anchor_domain.as_deref() {
                Some(anchor) if bucketable_anchor(anchor) => {
                    let key = psl::registrable_domain(anchor).to_string();
                    self.exc_by_domain.entry(key).or_default().push(idx);
                }
                Some(_) => self.exc_scan.push(idx),
                None => {
                    match tokens::pattern_token(
                        &filter.pattern,
                        filter.start_anchor,
                        filter.end_anchor,
                    ) {
                        Some(t) => self.exc_tokens.entry(t).or_default().push(idx),
                        None => self.exc_scan.push(idx),
                    }
                }
            }
            self.exceptions.push(filter);
            return;
        }
        match &filter.anchor_domain {
            Some(anchor) => {
                let key = psl::registrable_domain(anchor).to_string();
                self.by_domain.entry(key).or_default().push(filter);
            }
            None => {
                let idx = self.generic.len() as u32;
                match tokens::pattern_token(&filter.pattern, filter.start_anchor, filter.end_anchor)
                {
                    Some(t) => self.generic_tokens.entry(t).or_default().push(idx),
                    None => self.generic_scan.push(idx),
                }
                self.generic.push(filter);
            }
        }
    }

    /// Compiles the tier-3 Aho-Corasick prefilter over the current
    /// always-scan lists. Idempotent; call again after adding more rules.
    /// Never changes verdicts — it only lets lookups skip scan rules whose
    /// required substring is absent from the URL.
    pub fn build_prefilter(&mut self) {
        let mut ids: HashMap<String, u32> = HashMap::new();
        let mut toks: Vec<String> = Vec::new();
        let mut required = |pattern: &str| -> Option<u32> {
            let token = tokens::pattern_substring(pattern)?.to_ascii_lowercase();
            Some(*ids.entry(token.clone()).or_insert_with(|| {
                toks.push(token);
                (toks.len() - 1) as u32
            }))
        };
        let generic_required = self
            .generic_scan
            .iter()
            .map(|&i| required(&self.generic[i as usize].pattern))
            .collect();
        let exc_required = self
            .exc_scan
            .iter()
            .map(|&i| required(&self.exceptions[i as usize].pattern))
            .collect();
        self.prefilter = Some(ScanPrefilter {
            automaton: TokenPrefilter::build(&toks),
            generic_required,
            exc_required,
        });
    }

    /// `true` once [`FilterSet::build_prefilter`] has run.
    pub fn has_prefilter(&self) -> bool {
        self.prefilter.is_some()
    }

    /// Replaces the prefilter counter cells (e.g. with registry-owned
    /// handles so the hit/miss totals surface in a metrics snapshot).
    pub fn set_prefilter_counters(&mut self, hits: Counter, misses: Counter) {
        self.prefilter_hits = hits;
        self.prefilter_misses = misses;
    }

    /// `(skipped, evaluated)` scan-rule totals since construction: how many
    /// always-scan candidates the tier-3 prefilter pruned vs let through.
    pub fn prefilter_stats(&self) -> (u64, u64) {
        (self.prefilter_hits.get(), self.prefilter_misses.get())
    }

    /// Total number of rules (blocking + exceptions).
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// `true` when no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Matches a full URL in context, applying exception rules.
    pub fn matches(&self, url: &str, ctx: &RequestContext<'_>) -> MatchResult {
        // The URL is tokenized at most once (token buckets) and run through
        // the prefilter automaton at most once (scan lists) — both memoized
        // across the blocking and exception passes.
        let mut url_tokens: Option<Vec<u64>> = None;
        let mut scan_hits: Option<TokenHits> = None;
        match self.first_blocking_match(url, ctx, &mut url_tokens, &mut scan_hits) {
            None => MatchResult::Clean,
            Some(rule) => {
                match self.first_exception_match(url, ctx, &mut url_tokens, &mut scan_hits) {
                    Some(exc) => MatchResult::Excepted(exc.raw.clone()),
                    None => MatchResult::Blocked(rule.raw.clone()),
                }
            }
        }
    }

    /// The always-scan candidates of one side, pruned by the tier-3
    /// prefilter when it has been built.
    fn pruned_scan(
        &self,
        url: &str,
        scan: &[u32],
        side: ScanSide,
        scan_hits: &mut Option<TokenHits>,
    ) -> Vec<u32> {
        match &self.prefilter {
            None => scan.to_vec(),
            Some(p) => {
                let required = match side {
                    ScanSide::Generic => &p.generic_required,
                    ScanSide::Exception => &p.exc_required,
                };
                p.prune(
                    url,
                    scan,
                    required,
                    scan_hits,
                    &self.prefilter_hits,
                    &self.prefilter_misses,
                )
            }
        }
    }

    fn first_blocking_match<'s>(
        &'s self,
        url: &str,
        ctx: &RequestContext<'_>,
        url_tokens: &mut Option<Vec<u64>>,
        scan_hits: &mut Option<TokenHits>,
    ) -> Option<&'s Filter> {
        let key = psl::registrable_domain(ctx.request_host);
        if let Some(rules) = self.by_domain.get(key) {
            if let Some(f) = rules.iter().find(|f| f.matches(url, ctx)) {
                return Some(f);
            }
        }
        if self.generic.is_empty() {
            return None;
        }
        let scan = self.pruned_scan(url, &self.generic_scan, ScanSide::Generic, scan_hits);
        let candidates = gather(url, url_tokens, scan, &self.generic_tokens, None);
        candidates
            .into_iter()
            .map(|i| &self.generic[i as usize])
            .find(|f| f.matches(url, ctx))
    }

    fn first_exception_match<'s>(
        &'s self,
        url: &str,
        ctx: &RequestContext<'_>,
        url_tokens: &mut Option<Vec<u64>>,
        scan_hits: &mut Option<TokenHits>,
    ) -> Option<&'s Filter> {
        if self.exceptions.is_empty() {
            return None;
        }
        let domain_bucket = self
            .exc_by_domain
            .get(psl::registrable_domain(ctx.request_host))
            .map(Vec::as_slice);
        let scan = self.pruned_scan(url, &self.exc_scan, ScanSide::Exception, scan_hits);
        let candidates = gather(url, url_tokens, scan, &self.exc_tokens, domain_bucket);
        candidates
            .into_iter()
            .map(|i| &self.exceptions[i as usize])
            .find(|f| f.matches(url, ctx))
    }

    /// The paper's relaxed matching: is this FQDN covered by a rule's domain
    /// anchor? Domain-wide rules (`||anchor^` with no path) cover the anchor
    /// and its subdomains; path rules only flag the anchored host itself —
    /// a path rule on `cloudfront.net` marks `cloudfront.net` as ATS but
    /// does not taint every customer's `dxxxx.cloudfront.net` bucket.
    pub fn matches_fqdn_relaxed(&self, fqdn: &str) -> bool {
        // Only lowercase when the caller's FQDN actually needs it.
        let lowered: Cow<'_, str> = if fqdn.bytes().any(|b| b.is_ascii_uppercase()) {
            Cow::Owned(fqdn.to_ascii_lowercase())
        } else {
            Cow::Borrowed(fqdn)
        };
        let fqdn = lowered.as_ref();
        let key = psl::registrable_domain(fqdn);
        self.by_domain.get(key).is_some_and(|rules| {
            rules.iter().any(|f| {
                f.anchor_domain.as_deref().is_some_and(|anchor| {
                    let domain_wide = f.pattern.is_empty() || f.pattern == "^";
                    if domain_wide {
                        fqdn == anchor
                            || ends_with_dot_prefixed(fqdn, anchor)
                            || ends_with_dot_prefixed(anchor, fqdn)
                    } else {
                        fqdn == anchor
                    }
                })
            })
        })
    }

    /// All anchor domains in the set (used to compute list coverage).
    pub fn anchor_domains(&self) -> impl Iterator<Item = &str> {
        self.by_domain
            .values()
            .flatten()
            .filter_map(|f| f.anchor_domain.as_deref())
    }
}

/// Which always-scan list a prune pass is working on.
#[derive(Clone, Copy)]
enum ScanSide {
    Generic,
    Exception,
}

impl ScanPrefilter {
    /// Returns the subset of `scan` whose required token occurs in `url`,
    /// scanning the URL through the automaton at most once per lookup
    /// (memoized in `scan_hits`). Entries past `required`'s length — rules
    /// added after the prefilter was built — are always kept.
    fn prune(
        &self,
        url: &str,
        scan: &[u32],
        required: &[Option<u32>],
        scan_hits: &mut Option<TokenHits>,
        skipped: &Counter,
        evaluated: &Counter,
    ) -> Vec<u32> {
        if scan.is_empty() {
            return Vec::new();
        }
        let hits = scan_hits.get_or_insert_with(|| {
            let mut h = TokenHits::default();
            self.automaton.scan(url, &mut h);
            h
        });
        let mut out = Vec::with_capacity(scan.len());
        for (k, &idx) in scan.iter().enumerate() {
            match required.get(k).copied().flatten() {
                Some(id) if !hits.contains(id) => {}
                _ => out.push(idx),
            }
        }
        skipped.add((scan.len() - out.len()) as u64);
        evaluated.add(out.len() as u64);
        out
    }
}

/// `haystack` ends with `".{needle}"` — the old `ends_with(&format!(…))`
/// check without the per-call allocation.
fn ends_with_dot_prefixed(haystack: &str, needle: &str) -> bool {
    haystack
        .strip_suffix(needle)
        .is_some_and(|prefix| prefix.ends_with('.'))
}

/// An anchored exception may be bucketed by its anchor's registrable domain
/// only when every matching host shares that registrable domain: true for
/// clean, non-public-suffix anchors (`reg(sub.anchor) == reg(anchor)`),
/// false for public suffixes (`@@||co.uk^` must cover `x.co.uk`, whose
/// registrable domain is `x.co.uk` itself) and malformed anchors.
fn bucketable_anchor(anchor: &str) -> bool {
    !psl::is_public_suffix(anchor)
        && !anchor.starts_with('.')
        && !anchor.ends_with('.')
        && !anchor.contains("..")
}

/// Collects candidate rule indices: the (prefilter-pruned) always-scan
/// candidates, the optional domain bucket, and every token bucket the URL's
/// tokens hit. Sorting and deduplicating restores insertion order, which
/// keeps first-match-wins semantics identical to a linear scan.
fn gather(
    url: &str,
    url_tokens: &mut Option<Vec<u64>>,
    scan: Vec<u32>,
    token_buckets: &HashMap<u64, Vec<u32>>,
    domain_bucket: Option<&[u32]>,
) -> Vec<u32> {
    let mut candidates: Vec<u32> = scan;
    if let Some(bucket) = domain_bucket {
        candidates.extend_from_slice(bucket);
    }
    if !token_buckets.is_empty() {
        let toks = url_tokens.get_or_insert_with(|| {
            let mut t = Vec::with_capacity(16);
            tokens::url_token_hashes(url, &mut t);
            t
        });
        for t in toks.iter() {
            if let Some(bucket) = token_buckets.get(t) {
                candidates.extend_from_slice(bucket);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearFilterSet;
    use redlight_net::http::ResourceKind;

    const LIST: &str = r#"
! EasyList-style test list
[Adblock Plus 2.0]
||exoclick.com^
||exosrv.com^$third-party
||doublepimp.com^
||bbc.co.uk/analytics
/adserver/*$script
@@||exoclick.com/allowed.js$script
example.com##.banner
"#;

    fn set() -> FilterSet {
        let mut s = FilterSet::new();
        let added = s.add_list(LIST);
        assert_eq!(added, 6, "6 URL rules (cosmetic + comments skipped)");
        s
    }

    fn ctx<'a>(page: &'a str, req: &'a str) -> RequestContext<'a> {
        RequestContext::new(page, req, ResourceKind::Script)
    }

    #[test]
    fn blocks_anchored_domains() {
        let s = set();
        assert!(s
            .matches(
                "https://main.exoclick.com/tag.js",
                &ctx("porn.site", "main.exoclick.com")
            )
            .is_blocked());
        assert_eq!(
            s.matches(
                "https://clean.cdn.com/lib.js",
                &ctx("porn.site", "clean.cdn.com")
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn exception_overrides_block() {
        let s = set();
        let r = s.matches(
            "https://exoclick.com/allowed.js",
            &ctx("porn.site", "exoclick.com"),
        );
        assert!(matches!(r, MatchResult::Excepted(_)));
    }

    #[test]
    fn third_party_rule_spares_first_party() {
        let s = set();
        assert!(s
            .matches(
                "https://sync.exosrv.com/pixel",
                &ctx("porn.site", "sync.exosrv.com")
            )
            .is_blocked());
        assert_eq!(
            s.matches(
                "https://sync.exosrv.com/pixel",
                &ctx("www.exosrv.com", "sync.exosrv.com")
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn path_only_rule_needs_the_path() {
        let s = set();
        assert!(s
            .matches("https://bbc.co.uk/analytics/b", &ctx("a.com", "bbc.co.uk"))
            .is_blocked());
        assert_eq!(
            s.matches("https://bbc.co.uk/news", &ctx("a.com", "bbc.co.uk")),
            MatchResult::Clean
        );
    }

    #[test]
    fn generic_substring_rule() {
        let s = set();
        assert!(s
            .matches("https://x.net/adserver/300.js", &ctx("a.com", "x.net"))
            .is_blocked());
        // $script option: images do not match.
        assert_eq!(
            s.matches(
                "https://x.net/adserver/300.gif",
                &RequestContext::new("a.com", "x.net", ResourceKind::Image)
            ),
            MatchResult::Clean
        );
    }

    #[test]
    fn relaxed_fqdn_matching() {
        let s = set();
        assert!(s.matches_fqdn_relaxed("exoclick.com"));
        assert!(s.matches_fqdn_relaxed("sync.exoclick.com"));
        assert!(s.matches_fqdn_relaxed("EXOSRV.com"));
        // bbc rule is a path rule anchoring bbc.co.uk: the host itself is
        // flagged, but sibling subdomains are not.
        assert!(s.matches_fqdn_relaxed("bbc.co.uk"));
        assert!(!s.matches_fqdn_relaxed("video.bbc.co.uk"));
        assert!(!s.matches_fqdn_relaxed("cleancdn.net"));
    }

    #[test]
    fn empty_set_is_clean() {
        let s = FilterSet::new();
        assert!(s.is_empty());
        assert_eq!(
            s.matches("https://anything.com/x", &ctx("a.com", "anything.com")),
            MatchResult::Clean
        );
        assert!(!s.matches_fqdn_relaxed("anything.com"));
    }

    #[test]
    fn untokenizable_rules_are_still_matched() {
        // `*track*` has no safe token (both runs touch `*`): it must land
        // in the always-scan list and keep matching.
        let mut s = FilterSet::new();
        s.add_list("*track*\n");
        assert!(s
            .matches("https://x.com/subtracker/a", &ctx("a.com", "x.com"))
            .is_blocked());
    }

    #[test]
    fn public_suffix_anchored_exception_is_always_scanned() {
        // `@@||co.uk^` covers x.co.uk, whose registrable domain ("x.co.uk")
        // differs from the anchor's ("co.uk") — a domain bucket would miss
        // it, so the rule must be in the always-scan list.
        let mut s = FilterSet::new();
        s.add_list("/pixel/\n@@||co.uk^\n");
        assert_eq!(
            s.matches("https://shop.co.uk/pixel/1", &ctx("a.com", "shop.co.uk")),
            MatchResult::Excepted("@@||co.uk^".to_string())
        );
    }

    #[test]
    fn first_match_wins_across_buckets() {
        // Two generic rules match; the earlier one must be reported even
        // though they live in different token buckets.
        let mut s = FilterSet::new();
        s.add_list("/zzztoken/\n/adserver/\n");
        let r = s.matches("https://x.net/adserver/zzztoken/1", &ctx("a.com", "x.net"));
        assert_eq!(r, MatchResult::Blocked("/zzztoken/".to_string()));
    }

    /// End-to-end coverage for `$domain=a.com|~b.com` page restrictions
    /// through the full `FilterSet` pipeline (option parsing is covered in
    /// `filter::tests`).
    #[test]
    fn domain_option_end_to_end() {
        let mut s = FilterSet::new();
        s.add_list("/track.js$domain=porn.site|~sub.porn.site\n@@/track.js$domain=allowed.site\n");
        // Allowed page domain (and its subdomains) → blocked.
        assert!(s
            .matches("https://x.com/track.js", &ctx("porn.site", "x.com"))
            .is_blocked());
        assert!(s
            .matches("https://x.com/track.js", &ctx("www.porn.site", "x.com"))
            .is_blocked());
        // Negated subdomain → clean.
        assert_eq!(
            s.matches("https://x.com/track.js", &ctx("sub.porn.site", "x.com")),
            MatchResult::Clean
        );
        // Unlisted page domain → clean.
        assert_eq!(
            s.matches("https://x.com/track.js", &ctx("other.site", "x.com")),
            MatchResult::Clean
        );
        // The exception's own $domain= restriction only fires on its page.
        assert!(matches!(
            s.matches("https://x.com/track.js", &ctx("porn.site", "x.com")),
            MatchResult::Blocked(_)
        ));
        let mut both = FilterSet::new();
        both.add_list("/track.js$domain=porn.site\n@@/track.js$domain=porn.site\n");
        assert!(matches!(
            both.matches("https://x.com/track.js", &ctx("porn.site", "x.com")),
            MatchResult::Excepted(_)
        ));
    }

    #[test]
    fn prefilter_prunes_scan_rules_without_changing_verdicts() {
        // Two untokenizable rules land in the always-scan list; the
        // prefilter must skip them on URLs lacking their substrings and
        // keep every verdict identical.
        // Built separately (not cloned): a clone would share the counter
        // cells, and this test pins that the plain set's stay at zero.
        let mut plain = FilterSet::new();
        plain.add_list("*track*\n*zzqq*\n@@||co.uk^\n/pixel/\n");
        let mut pre = FilterSet::new();
        pre.add_list("*track*\n*zzqq*\n@@||co.uk^\n/pixel/\n");
        pre.build_prefilter();
        assert!(pre.has_prefilter() && !plain.has_prefilter());
        let cases = [
            ("https://x.com/subtracker/a", "a.com", "x.com"),
            ("https://x.com/clean/a", "a.com", "x.com"),
            ("https://shop.co.uk/pixel/1", "a.com", "shop.co.uk"),
            ("https://x.com/zzqq.js", "a.com", "x.com"),
        ];
        for (url, page, req) in cases {
            let c = ctx(page, req);
            assert_eq!(pre.matches(url, &c), plain.matches(url, &c), "{url}");
        }
        let (skipped, evaluated) = pre.prefilter_stats();
        assert!(skipped > 0, "some scan rule should have been pruned");
        assert!(evaluated > 0, "some scan rule should have been evaluated");
        assert_eq!(plain.prefilter_stats(), (0, 0));
    }

    #[test]
    fn scan_rules_without_any_run_survive_the_prefilter() {
        // `^` patterns have no alnum run ≥ 2 — no required token, so the
        // prefilter must keep evaluating them.
        let mut s = FilterSet::new();
        s.add_list("*?*\n");
        s.build_prefilter();
        assert!(s
            .matches("https://x.com/a?b=1", &ctx("a.com", "x.com"))
            .is_blocked());
    }

    #[test]
    fn rules_added_after_prefilter_build_are_still_evaluated() {
        let mut s = FilterSet::new();
        s.add_list("*track*\n");
        s.build_prefilter();
        s.add_list("*banner*\n");
        // "banner" rule postdates the automaton: it must not be pruned.
        assert!(s
            .matches("https://x.com/mybanner9.js", &ctx("a.com", "x.com"))
            .is_blocked());
        // Rebuilding covers it.
        s.build_prefilter();
        assert!(s
            .matches("https://x.com/mybanner9.js", &ctx("a.com", "x.com"))
            .is_blocked());
    }

    /// The indexed engine and the linear reference agree on the test list.
    #[test]
    fn agrees_with_linear_reference() {
        let mut indexed = FilterSet::new();
        indexed.add_list(LIST);
        let mut linear = LinearFilterSet::new();
        linear.add_list(LIST);
        let cases = [
            (
                "https://main.exoclick.com/tag.js",
                "porn.site",
                "main.exoclick.com",
            ),
            (
                "https://exoclick.com/allowed.js",
                "porn.site",
                "exoclick.com",
            ),
            (
                "https://sync.exosrv.com/pixel",
                "www.exosrv.com",
                "sync.exosrv.com",
            ),
            ("https://bbc.co.uk/analytics/b", "a.com", "bbc.co.uk"),
            ("https://x.net/adserver/300.js", "a.com", "x.net"),
            ("https://clean.cdn.com/lib.js", "porn.site", "clean.cdn.com"),
        ];
        for (url, page, req) in cases {
            let c = ctx(page, req);
            assert_eq!(indexed.matches(url, &c), linear.matches(url, &c), "{url}");
        }
        for fqdn in ["exoclick.com", "sync.exoclick.com", "bbc.co.uk", "x.net"] {
            assert_eq!(
                indexed.matches_fqdn_relaxed(fqdn),
                linear.matches_fqdn_relaxed(fqdn),
                "{fqdn}"
            );
        }
    }
}
