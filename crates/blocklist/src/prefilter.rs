//! Aho-Corasick multi-pattern prefilter — the matcher's third tier.
//!
//! Tiers 1 and 2 ([`crate::matcher`]) leave a residue of rules that are
//! evaluated on *every* lookup: generic rules without a safe token
//! (`*ads*`) and exceptions anchored on a public suffix. Each such rule
//! still usually contains some alphanumeric run — and any alphanumeric run
//! of a pattern, safe or not, must appear as a contiguous case-insensitive
//! substring of every URL the pattern matches (literal pattern bytes
//! consume exactly one URL byte each; `*` and `^` can never interrupt a
//! literal run, see [`crate::tokens::pattern_substring`]).
//!
//! So: collect each always-scan rule's longest run as a *required token*,
//! compile the distinct tokens into one Aho-Corasick automaton over the
//! 36-symbol lowercase-alphanumeric alphabet, scan the URL once per
//! lookup, and skip every scan rule whose required token never occurred.
//! Pruned rules cannot possibly match, so verdicts stay byte-identical to
//! the linear reference — the equivalence property test pins this.

/// Alphabet size: `a-z` then `0-9`. Non-alphanumeric URL bytes reset the
/// automaton to the root (tokens are intra-run substrings, so nothing is
/// lost by the reset — it only shortens failure chains).
const ALPHA: usize = 36;

/// Maps an ASCII byte to its dense alphabet symbol, `None` outside
/// `[A-Za-z0-9]`.
fn symbol(b: u8) -> Option<usize> {
    match b.to_ascii_lowercase() {
        b @ b'a'..=b'z' => Some((b - b'a') as usize),
        b @ b'0'..=b'9' => Some((b - b'0') as usize + 26),
        _ => None,
    }
}

/// Which of an automaton's tokens occurred in the last scanned text.
/// Reused across scans to avoid reallocating the bitset.
#[derive(Debug, Clone, Default)]
pub struct TokenHits {
    words: Vec<u64>,
}

impl TokenHits {
    fn reset(&mut self, tokens: usize) {
        self.words.clear();
        self.words.resize(tokens.div_ceil(64), 0);
    }

    fn set(&mut self, id: u32) {
        self.words[id as usize / 64] |= 1 << (id % 64);
    }

    /// `true` when token `id` occurred in the scanned text.
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w >> (id % 64) & 1 == 1)
    }
}

/// A dense-transition Aho-Corasick automaton over lowercase alphanumeric
/// tokens. Built once per [`crate::FilterSet`]; scanning is a single pass
/// over the URL with one table lookup per byte.
#[derive(Debug, Clone, Default)]
pub struct TokenPrefilter {
    /// Goto-with-failure DFA: `trans[state][symbol]` is the next state.
    trans: Vec<[u32; ALPHA]>,
    /// Token ids whose string ends at this state, including those reached
    /// via suffix (failure) links — propagated at build time.
    outputs: Vec<Vec<u32>>,
    /// Number of distinct tokens compiled in.
    tokens: usize,
}

impl TokenPrefilter {
    /// Compiles `tokens` (already lowercased, purely alphanumeric, distinct)
    /// into an automaton. Token `i`'s id is `i as u32`.
    pub fn build(tokens: &[String]) -> Self {
        const NONE: u32 = u32::MAX;
        // Phase 1: trie with NONE sentinels for absent edges.
        let mut trans: Vec<[u32; ALPHA]> = vec![[NONE; ALPHA]];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        for (id, token) in tokens.iter().enumerate() {
            let mut state = 0usize;
            for &b in token.as_bytes() {
                let c = symbol(b).expect("prefilter tokens are alphanumeric");
                if trans[state][c] == NONE {
                    trans[state][c] = trans.len() as u32;
                    trans.push([NONE; ALPHA]);
                    outputs.push(Vec::new());
                }
                state = trans[state][c] as usize;
            }
            outputs[state].push(id as u32);
        }
        // Phase 2: BFS failure links, folded directly into the transition
        // table (goto-with-failure → plain DFA) with suffix outputs
        // propagated into each state's output list.
        let mut fail = vec![0u32; trans.len()];
        let mut queue = std::collections::VecDeque::new();
        for slot in trans[0].iter_mut() {
            match *slot {
                NONE => *slot = 0,
                s => {
                    fail[s as usize] = 0;
                    queue.push_back(s);
                }
            }
        }
        while let Some(state) = queue.pop_front() {
            let f = fail[state as usize] as usize;
            let suffix_out = outputs[f].clone();
            outputs[state as usize].extend(suffix_out);
            // The failure state is always shallower than `state`, so its row
            // is final — copy it out and patch this row against it.
            let fallback = trans[f];
            for (slot, &fb) in trans[state as usize].iter_mut().zip(fallback.iter()) {
                match *slot {
                    NONE => *slot = fb,
                    next => {
                        fail[next as usize] = fb;
                        queue.push_back(next);
                    }
                }
            }
        }
        TokenPrefilter {
            trans,
            outputs,
            tokens: tokens.len(),
        }
    }

    /// Number of distinct tokens compiled into the automaton.
    pub fn token_count(&self) -> usize {
        self.tokens
    }

    /// Scans `text` once and records every token that occurs (as a
    /// case-insensitive substring of an alphanumeric run) into `hits`.
    pub fn scan(&self, text: &str, hits: &mut TokenHits) {
        hits.reset(self.tokens);
        if self.tokens == 0 {
            return;
        }
        let mut state = 0u32;
        for &b in text.as_bytes() {
            match symbol(b) {
                None => state = 0,
                Some(c) => {
                    state = self.trans[state as usize][c];
                    let out = &self.outputs[state as usize];
                    if !out.is_empty() {
                        for &id in out {
                            hits.set(id);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits_of(pf: &TokenPrefilter, text: &str) -> Vec<u32> {
        let mut h = TokenHits::default();
        pf.scan(text, &mut h);
        (0..pf.token_count() as u32)
            .filter(|&id| h.contains(id))
            .collect()
    }

    fn build(tokens: &[&str]) -> TokenPrefilter {
        TokenPrefilter::build(&tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn finds_tokens_anywhere_in_runs() {
        let pf = build(&["ads", "track", "pixel"]);
        assert_eq!(hits_of(&pf, "https://x.com/loads/1"), vec![0]); // "ads" in "loads"
        assert_eq!(hits_of(&pf, "https://subtracker.net/a"), vec![1]);
        assert_eq!(hits_of(&pf, "https://clean.example/img"), Vec::<u32>::new());
    }

    #[test]
    fn scanning_is_case_insensitive() {
        let pf = build(&["banner"]);
        assert_eq!(hits_of(&pf, "https://x.com/BANNER300.js"), vec![0]);
    }

    #[test]
    fn overlapping_and_nested_tokens_all_fire() {
        // "ad" is a prefix of "adserver"; "server" is its suffix — suffix
        // outputs must propagate through failure links.
        let pf = build(&["adserver", "server", "ad"]);
        assert_eq!(hits_of(&pf, "x/adserver/"), vec![0, 1, 2]);
        assert_eq!(hits_of(&pf, "x/server/"), vec![1]);
    }

    #[test]
    fn non_alnum_bytes_reset_the_run() {
        // Tokens are substrings of single alphanumeric runs: "adserver"
        // split by '.' must not match.
        let pf = build(&["adserver"]);
        assert_eq!(hits_of(&pf, "https://ad.server.com/"), Vec::<u32>::new());
        assert_eq!(hits_of(&pf, "https://xadserverx.com/"), vec![0]);
    }

    #[test]
    fn empty_automaton_scans_cleanly() {
        let pf = TokenPrefilter::default();
        assert_eq!(hits_of(&pf, "https://anything.com/"), Vec::<u32>::new());
    }
}
