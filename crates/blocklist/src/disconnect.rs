//! Disconnect-style entity list: domain → owning organization.
//!
//! The study "initially considered using Disconnect's domain-to-company
//! mapping but soon realized that it is incomplete" (§4.2(3)): it resolved
//! only 142 FQDNs in their data, versus 4,477 once complemented with X.509
//! organization information. [`EntityList`] models the list format
//! (organizations owning sets of *properties*, matched by registrable domain
//! or exact FQDN).

use std::collections::HashMap;

use redlight_net::psl;
use serde::{Deserialize, Serialize};

/// One organization entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// Organization name (e.g. "Alphabet", "Oracle").
    pub name: String,
    /// Domains the organization owns (registrable domains).
    pub properties: Vec<String>,
}

/// The entity list.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EntityList {
    entities: Vec<Entity>,
    /// registrable domain → index into `entities`.
    index: HashMap<String, usize>,
}

impl EntityList {
    /// Empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an organization with its owned domains.
    pub fn add(&mut self, name: &str, properties: &[&str]) {
        let idx = self.entities.len();
        let props: Vec<String> = properties.iter().map(|p| p.to_ascii_lowercase()).collect();
        for p in &props {
            self.index.insert(p.clone(), idx);
        }
        self.entities.push(Entity {
            name: name.to_string(),
            properties: props,
        });
    }

    /// Resolves an FQDN to its owning organization, matching by registrable
    /// domain (like the Disconnect list does).
    pub fn owner_of(&self, fqdn: &str) -> Option<&str> {
        let reg = psl::registrable_domain(&fqdn.to_ascii_lowercase()).to_string();
        self.index
            .get(&reg)
            .map(|&idx| self.entities[idx].name.as_str())
    }

    /// Number of organizations.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterates over all entities.
    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// Number of mapped domains.
    pub fn domain_count(&self) -> usize {
        self.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EntityList {
        let mut l = EntityList::new();
        l.add(
            "Alphabet",
            &["google.com", "doubleclick.net", "google-analytics.com"],
        );
        l.add("Oracle", &["addthis.com", "bluekai.com"]);
        l
    }

    #[test]
    fn resolves_by_registrable_domain() {
        let l = sample();
        assert_eq!(l.owner_of("stats.g.doubleclick.net"), Some("Alphabet"));
        assert_eq!(l.owner_of("ADDTHIS.com"), Some("Oracle"));
        assert_eq!(l.owner_of("unknown-tracker.party"), None);
    }

    #[test]
    fn counts() {
        let l = sample();
        assert_eq!(l.len(), 2);
        assert_eq!(l.domain_count(), 5);
        assert_eq!(l.iter().count(), 2);
    }
}
