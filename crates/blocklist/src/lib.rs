//! # redlight-blocklist
//!
//! An Adblock-Plus-syntax filter-list engine plus a Disconnect-style
//! domain→entity list.
//!
//! The study classifies third-party domains as advertising & tracking
//! services (ATS) by matching the **full request URL** against EasyList and
//! EasyPrivacy (§4.2(2)) — rules consider the whole URL (`bbc.co.uk` is not
//! blacklisted but `bbc.co.uk/analytics` is) — and then *relaxes* matching to
//! the base FQDN to count ATS organizations. Parent-company attribution
//! starts from Disconnect's (incomplete) entity list (§4.2(3)).
//!
//! [`filter`] implements the rule syntax (domain anchors `||…^`, start/end
//! anchors, wildcards, separators, `@@` exceptions, `$` options including
//! `third-party`, resource types and `domain=`), [`matcher`] the
//! token-indexed engine (with [`tokens`] providing the safe-substring
//! extraction and [`prefilter`] the Aho-Corasick scan-list pruning tier),
//! [`linear`] the retained pre-index reference matcher used by the
//! equivalence tests and benchmarks, and [`disconnect`] the entity list.

#![warn(missing_docs)]

pub mod disconnect;
pub mod filter;
pub mod linear;
pub mod matcher;
pub mod prefilter;
pub mod tokens;

pub use disconnect::EntityList;
pub use filter::{Filter, FilterParseError, RequestContext};
pub use linear::LinearFilterSet;
pub use matcher::{FilterSet, MatchResult};
pub use prefilter::{TokenHits, TokenPrefilter};
