//! Adblock-Plus filter rules: parsing and single-rule matching.
//!
//! Supported syntax (the subset EasyList/EasyPrivacy URL rules are built
//! from):
//!
//! * `||domain.com^path` — domain anchor: matches the domain and all its
//!   subdomains at a label boundary;
//! * `|https://exact.start` / `ending|` — start / end anchors;
//! * plain substring patterns, `*` wildcards, `^` separator placeholders;
//! * `@@` exception rules;
//! * `$` options: `third-party`, `~third-party`, resource types (`script`,
//!   `image`, `stylesheet`, `subdocument`, `xmlhttprequest`, `ping`,
//!   `document`, `other`) and their `~` negations, and
//!   `domain=a.com|~b.com` page-domain restrictions;
//! * `!` comment lines and `##`/`#@#` element-hiding rules are recognized
//!   and skipped by the list parser in [`crate::matcher`].

use serde::{Deserialize, Serialize};

use redlight_net::http::ResourceKind;
use redlight_net::psl;

/// Error for unparseable rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError(pub String);

/// The request context a rule is evaluated against.
#[derive(Debug, Clone)]
pub struct RequestContext<'a> {
    /// Hostname of the page (first party) issuing the request.
    pub page_host: &'a str,
    /// Hostname of the request URL.
    pub request_host: &'a str,
    /// `true` when request and page hosts have different registrable domains.
    pub third_party: bool,
    /// Resource type being loaded.
    pub kind: ResourceKind,
}

impl<'a> RequestContext<'a> {
    /// Builds a context, deriving `third_party` from registrable domains.
    pub fn new(page_host: &'a str, request_host: &'a str, kind: ResourceKind) -> Self {
        let third_party =
            psl::registrable_domain(page_host) != psl::registrable_domain(request_host);
        RequestContext {
            page_host,
            request_host,
            third_party,
            kind,
        }
    }

    /// Like [`RequestContext::new`], but resolves both registrable domains
    /// through a shared [`psl::HostCache`] — the hot-path constructor used
    /// by the ATS classifier, which builds one context per classified
    /// request.
    pub fn with_hosts(
        page_host: &'a str,
        request_host: &'a str,
        kind: ResourceKind,
        hosts: &psl::HostCache,
    ) -> Self {
        RequestContext {
            page_host,
            request_host,
            third_party: !hosts.same_site(page_host, request_host),
            kind,
        }
    }
}

/// Option constraints attached to a rule.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterOptions {
    /// `Some(true)` = only third-party, `Some(false)` = only first-party.
    pub third_party: Option<bool>,
    /// Resource kinds explicitly allowed; empty = all.
    pub kinds: Vec<String>,
    /// Resource kinds explicitly excluded (`~script`).
    pub not_kinds: Vec<String>,
    /// Page domains the rule is restricted to; empty = all.
    pub domains: Vec<String>,
    /// Page domains the rule must not apply on.
    pub not_domains: Vec<String>,
}

/// One parsed URL filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Filter {
    /// The raw rule text (for reporting).
    pub raw: String,
    /// `true` for `@@` exception rules.
    pub exception: bool,
    /// Domain anchor (`||domain^…`), lowercase, when present.
    pub anchor_domain: Option<String>,
    /// Pattern to match after the anchor (may contain `*` and `^`).
    pub pattern: String,
    /// `|`-anchored at the start (absolute URL prefix).
    pub start_anchor: bool,
    /// `|`-anchored at the end.
    pub end_anchor: bool,
    /// Options.
    pub options: FilterOptions,
}

impl Filter {
    /// Parses one rule line. Returns `Err` for element-hiding rules,
    /// comments and empty lines — the list parser skips those.
    pub fn parse(line: &str) -> Result<Filter, FilterParseError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
            return Err(FilterParseError("comment or empty".into()));
        }
        if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
            return Err(FilterParseError("element hiding rule".into()));
        }

        let (exception, rest) = match line.strip_prefix("@@") {
            Some(r) => (true, r),
            None => (false, line),
        };

        // Split off options at the last '$' that is followed by option-ish text.
        let (body, opts_str) = match rest.rfind('$') {
            Some(idx) if idx + 1 < rest.len() && looks_like_options(&rest[idx + 1..]) => {
                (&rest[..idx], Some(&rest[idx + 1..]))
            }
            _ => (rest, None),
        };
        if body.is_empty() {
            return Err(FilterParseError("empty pattern".into()));
        }

        let mut options = FilterOptions::default();
        if let Some(opts) = opts_str {
            for opt in opts.split(',') {
                let opt = opt.trim();
                match opt {
                    "third-party" => options.third_party = Some(true),
                    "~third-party" => options.third_party = Some(false),
                    "script" | "image" | "stylesheet" | "subdocument" | "xmlhttprequest"
                    | "ping" | "document" | "other" => options.kinds.push(opt.to_string()),
                    _ if opt.starts_with('~')
                        && matches!(
                            &opt[1..],
                            "script"
                                | "image"
                                | "stylesheet"
                                | "subdocument"
                                | "xmlhttprequest"
                                | "ping"
                                | "document"
                                | "other"
                        ) =>
                    {
                        options.not_kinds.push(opt[1..].to_string());
                    }
                    _ if opt.starts_with("domain=") => {
                        for d in opt["domain=".len()..].split('|') {
                            if let Some(nd) = d.strip_prefix('~') {
                                options.not_domains.push(nd.to_ascii_lowercase());
                            } else if !d.is_empty() {
                                options.domains.push(d.to_ascii_lowercase());
                            }
                        }
                    }
                    // Unknown options are tolerated (EasyList has many).
                    _ => {}
                }
            }
        }

        // Domain-anchored rule.
        if let Some(after) = body.strip_prefix("||") {
            let split = after.find(['^', '/', '*', '|', '?']).unwrap_or(after.len());
            let domain = after[..split].to_ascii_lowercase();
            if domain.is_empty() {
                return Err(FilterParseError("empty domain anchor".into()));
            }
            let pattern = after[split..].to_string();
            let end_anchor = pattern.ends_with('|');
            let pattern = pattern.strip_suffix('|').unwrap_or(&pattern).to_string();
            return Ok(Filter {
                raw: line.to_string(),
                exception,
                anchor_domain: Some(domain),
                pattern,
                start_anchor: false,
                end_anchor,
                options,
            });
        }

        let start_anchor = body.starts_with('|');
        let body2 = body.strip_prefix('|').unwrap_or(body);
        let end_anchor = body2.ends_with('|');
        let pattern = body2.strip_suffix('|').unwrap_or(body2).to_string();
        if pattern.is_empty() {
            return Err(FilterParseError("empty pattern".into()));
        }
        Ok(Filter {
            raw: line.to_string(),
            exception,
            anchor_domain: None,
            pattern,
            start_anchor,
            end_anchor,
            options,
        })
    }

    /// Whether this rule matches `url` (full URL, no fragment) in `ctx`.
    pub fn matches(&self, url: &str, ctx: &RequestContext<'_>) -> bool {
        if !self.options_match(ctx) {
            return false;
        }
        match &self.anchor_domain {
            Some(domain) => {
                if !host_matches_anchor(ctx.request_host, domain) {
                    return false;
                }
                if self.pattern.is_empty() {
                    return true;
                }
                // The pattern applies from the position right after the host.
                let Some(host_pos) = find_host_end(url, ctx.request_host) else {
                    return false;
                };
                pattern_match(&url[host_pos..], &self.pattern, true, self.end_anchor)
                    // `^` right after the anchor also matches end-of-URL.
                    || (self.pattern == "^" && url.len() == host_pos)
            }
            None => {
                if self.start_anchor {
                    pattern_match(url, &self.pattern, true, self.end_anchor)
                } else {
                    pattern_search(url, &self.pattern, self.end_anchor)
                }
            }
        }
    }

    fn options_match(&self, ctx: &RequestContext<'_>) -> bool {
        if let Some(tp) = self.options.third_party {
            if tp != ctx.third_party {
                return false;
            }
        }
        let kind_name = ctx.kind.option_name();
        if !self.options.kinds.is_empty() && !self.options.kinds.iter().any(|k| k == kind_name) {
            return false;
        }
        if self.options.not_kinds.iter().any(|k| k == kind_name) {
            return false;
        }
        if !self.options.domains.is_empty()
            && !self
                .options
                .domains
                .iter()
                .any(|d| host_matches_anchor(ctx.page_host, d))
        {
            return false;
        }
        if self
            .options
            .not_domains
            .iter()
            .any(|d| host_matches_anchor(ctx.page_host, d))
        {
            return false;
        }
        true
    }
}

fn looks_like_options(s: &str) -> bool {
    // Options are comma-separated words, possibly with '=' and '~' and '|'.
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, ',' | '-' | '=' | '~' | '|' | '.'))
}

/// `host` equals `anchor` or is a subdomain of it.
fn host_matches_anchor(host: &str, anchor: &str) -> bool {
    host == anchor
        || (host.len() > anchor.len()
            && host.ends_with(anchor)
            && host.as_bytes()[host.len() - anchor.len() - 1] == b'.')
}

/// Byte offset in `url` just past the hostname.
fn find_host_end(url: &str, host: &str) -> Option<usize> {
    let idx = url.find(host)?;
    Some(idx + host.len())
}

/// `^` matches a separator: anything that is not alphanumeric, `_`, `-`,
/// `.` or `%` — or the end of the URL.
fn is_separator(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b'%'))
}

/// Matches `pattern` against `text` anchored at position 0.
/// When `anchored_end`, the pattern must consume all of `text`.
fn pattern_match(text: &str, pattern: &str, anchored_start: bool, anchored_end: bool) -> bool {
    debug_assert!(anchored_start);
    fn rec(t: &[u8], p: &[u8], anchored_end: bool) -> bool {
        match p.first() {
            None => !anchored_end || t.is_empty(),
            Some(b'*') => {
                // Try all suffixes.
                (0..=t.len()).any(|skip| rec(&t[skip..], &p[1..], anchored_end))
            }
            Some(b'^') => {
                if t.is_empty() {
                    // `^` may match end-of-input, consuming nothing.
                    rec(t, &p[1..], anchored_end)
                } else if is_separator(t[0]) {
                    rec(&t[1..], &p[1..], anchored_end)
                } else {
                    false
                }
            }
            Some(&c) => {
                t.first().is_some_and(|&tc| tc.eq_ignore_ascii_case(&c))
                    && rec(&t[1..], &p[1..], anchored_end)
            }
        }
    }
    rec(text.as_bytes(), pattern.as_bytes(), anchored_end)
}

/// Searches `pattern` anywhere in `text`.
fn pattern_search(text: &str, pattern: &str, anchored_end: bool) -> bool {
    (0..=text.len()).any(|start| pattern_match(&text[start..], pattern, true, anchored_end))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(page: &'a str, req: &'a str) -> RequestContext<'a> {
        RequestContext::new(page, req, ResourceKind::Script)
    }

    #[test]
    fn domain_anchor_matches_domain_and_subdomains() {
        let f = Filter::parse("||exoclick.com^").unwrap();
        assert!(f.matches(
            "https://exoclick.com/tag.js",
            &ctx("porn.site", "exoclick.com")
        ));
        assert!(f.matches(
            "https://main.exoclick.com/tag.js",
            &ctx("porn.site", "main.exoclick.com")
        ));
        assert!(!f.matches(
            "https://notexoclick.com/tag.js",
            &ctx("porn.site", "notexoclick.com")
        ));
    }

    #[test]
    fn paper_example_full_url_vs_domain() {
        // bbc.co.uk is not blacklisted, but bbc.co.uk/analytics is.
        let f = Filter::parse("||bbc.co.uk/analytics").unwrap();
        assert!(f.matches(
            "https://bbc.co.uk/analytics/beacon",
            &ctx("news.site", "bbc.co.uk")
        ));
        assert!(!f.matches("https://bbc.co.uk/news", &ctx("news.site", "bbc.co.uk")));
    }

    #[test]
    fn separator_semantics() {
        let f = Filter::parse("||ads.net^").unwrap();
        // `^` matches '/' and end-of-URL but not an alphanumeric char.
        assert!(f.matches("http://ads.net/x", &ctx("a.com", "ads.net")));
        assert!(f.matches("http://ads.net", &ctx("a.com", "ads.net")));
        // Different host entirely: anchor check fails first.
        assert!(!f.matches("http://ads.network/x", &ctx("a.com", "ads.network")));
    }

    #[test]
    fn wildcards() {
        let f = Filter::parse("/banner/*/img^").unwrap();
        assert!(f.matches(
            "http://x.com/banner/300x250/img/a.png",
            &ctx("a.com", "x.com")
        ));
        assert!(!f.matches("http://x.com/banner/img", &ctx("a.com", "x.com")));
    }

    #[test]
    fn start_and_end_anchors() {
        let start = Filter::parse("|https://cdn.").unwrap();
        assert!(start.matches(
            "https://cdn.tracker.net/x",
            &ctx("a.com", "cdn.tracker.net")
        ));
        assert!(!start.matches("http://a.com/https://cdn.", &ctx("a.com", "a.com")));

        let end = Filter::parse("/pixel.gif|").unwrap();
        assert!(end.matches("http://t.co/pixel.gif", &ctx("a.com", "t.co")));
        assert!(!end.matches("http://t.co/pixel.gif?x=1", &ctx("a.com", "t.co")));
    }

    #[test]
    fn third_party_option() {
        let f = Filter::parse("||tracker.com^$third-party").unwrap();
        assert!(f.matches("https://tracker.com/t.js", &ctx("site.com", "tracker.com")));
        // First-party context: registrable domains match.
        assert!(!f.matches(
            "https://tracker.com/t.js",
            &ctx("www.tracker.com", "tracker.com")
        ));
        let fp = Filter::parse("||self.com^$~third-party").unwrap();
        assert!(fp.matches("https://self.com/a.js", &ctx("www.self.com", "self.com")));
        assert!(!fp.matches("https://self.com/a.js", &ctx("other.com", "self.com")));
    }

    #[test]
    fn resource_kind_options() {
        let f = Filter::parse("||ads.com^$script,image").unwrap();
        let script = RequestContext::new("a.com", "ads.com", ResourceKind::Script);
        let frame = RequestContext::new("a.com", "ads.com", ResourceKind::Frame);
        assert!(f.matches("https://ads.com/t.js", &script));
        assert!(!f.matches("https://ads.com/frame", &frame));

        let neg = Filter::parse("||ads.com^$~script").unwrap();
        assert!(!neg.matches("https://ads.com/t.js", &script));
        assert!(neg.matches("https://ads.com/frame", &frame));
    }

    #[test]
    fn domain_option_restricts_page() {
        let f = Filter::parse("/track.js$domain=porn.site|~sub.porn.site").unwrap();
        assert!(f.matches("https://x.com/track.js", &ctx("porn.site", "x.com")));
        assert!(f.matches("https://x.com/track.js", &ctx("www.porn.site", "x.com")));
        assert!(!f.matches("https://x.com/track.js", &ctx("sub.porn.site", "x.com")));
        assert!(!f.matches("https://x.com/track.js", &ctx("other.site", "x.com")));
    }

    #[test]
    fn domain_option_parses_allow_and_deny_lists() {
        let f = Filter::parse("/t.js$domain=A.com|~b.com|c.org|~D.net").unwrap();
        assert_eq!(f.options.domains, vec!["a.com", "c.org"]);
        assert_eq!(f.options.not_domains, vec!["b.com", "d.net"]);
        // Denied pages lose even when listed nowhere else.
        assert!(f.matches("https://x.com/t.js", &ctx("a.com", "x.com")));
        assert!(f.matches("https://x.com/t.js", &ctx("c.org", "x.com")));
        assert!(!f.matches("https://x.com/t.js", &ctx("b.com", "x.com")));
        assert!(!f.matches("https://x.com/t.js", &ctx("sub.d.net", "x.com")));
        assert!(!f.matches("https://x.com/t.js", &ctx("unlisted.com", "x.com")));
    }

    #[test]
    fn domain_option_with_only_negations_allows_everywhere_else() {
        let f = Filter::parse("/t.js$domain=~b.com").unwrap();
        assert!(f.options.domains.is_empty());
        assert_eq!(f.options.not_domains, vec!["b.com"]);
        assert!(f.matches("https://x.com/t.js", &ctx("anything.com", "x.com")));
        assert!(!f.matches("https://x.com/t.js", &ctx("b.com", "x.com")));
        assert!(!f.matches("https://x.com/t.js", &ctx("www.b.com", "x.com")));
    }

    #[test]
    fn domain_option_combines_with_other_options() {
        let f = Filter::parse("||ads.com^$third-party,domain=porn.site").unwrap();
        assert_eq!(f.options.domains, vec!["porn.site"]);
        assert_eq!(f.options.third_party, Some(true));
        assert!(f.matches("https://ads.com/t.js", &ctx("porn.site", "ads.com")));
        // Wrong page domain, even though third-party holds.
        assert!(!f.matches("https://ads.com/t.js", &ctx("other.site", "ads.com")));
    }

    #[test]
    fn with_hosts_agrees_with_new() {
        let cache = psl::HostCache::new();
        for (page, req) in [
            ("porn.site", "main.exoclick.com"),
            ("www.exosrv.com", "sync.exosrv.com"),
            ("a.com", "a.com"),
        ] {
            let plain = RequestContext::new(page, req, ResourceKind::Script);
            let cached = RequestContext::with_hosts(page, req, ResourceKind::Script, &cache);
            assert_eq!(plain.third_party, cached.third_party, "{page} -> {req}");
        }
        assert!(cache.stats().misses > 0);
    }

    #[test]
    fn exception_rules_parse() {
        let f = Filter::parse("@@||goodcdn.com^$script").unwrap();
        assert!(f.exception);
        assert!(f.matches("https://goodcdn.com/lib.js", &ctx("a.com", "goodcdn.com")));
    }

    #[test]
    fn comments_and_cosmetic_rules_are_rejected() {
        assert!(Filter::parse("! comment").is_err());
        assert!(Filter::parse("").is_err());
        assert!(Filter::parse("[Adblock Plus 2.0]").is_err());
        assert!(Filter::parse("example.com##.ad-banner").is_err());
    }

    #[test]
    fn case_insensitive_pattern_match() {
        let f = Filter::parse("/AdServer/").unwrap();
        assert!(f.matches("http://x.com/adserver/a", &ctx("a.com", "x.com")));
    }
}
