//! Property test: the token-indexed [`FilterSet`] is verdict-for-verdict
//! equivalent to the retained linear reference matcher.
//!
//! Rules and request URLs are generated from `u64` seeds over a shared pool
//! of domains (including `co.uk`-style public-suffix anchors, the one edge
//! where naive exception bucketing would diverge) and path segments chosen
//! to collide between rules and URLs often enough that every verdict —
//! `Blocked`, `Excepted`, `Clean` — is exercised.

use proptest::collection::vec;
use proptest::prelude::*;

use redlight_blocklist::{FilterSet, LinearFilterSet, RequestContext};
use redlight_net::http::ResourceKind;

/// Domain pool shared by rule anchors, page hosts and request hosts.
/// `co.uk` and `com.ru` are public suffixes; `x.weirdtld` exercises the
/// PSL wildcard fallback.
const DOMAINS: &[&str] = &[
    "exoclick.com",
    "ads.co.uk",
    "co.uk",
    "com.ru",
    "tracker.net",
    "cdn.site.com",
    "pixel.ru",
    "example.co.uk",
    "doubleclick.net",
    "x.weirdtld",
    "porn.site",
];

const SUBDOMAINS: &[&str] = &["", "www.", "sync.", "main.", "a.b."];

const SEGMENTS: &[&str] = &[
    "adserver",
    "banner",
    "track",
    "pixel",
    "img",
    "analytics",
    "allowed",
    "a",
    "content",
    "js",
];

const KINDS: &[ResourceKind] = &[
    ResourceKind::Script,
    ResourceKind::Image,
    ResourceKind::Frame,
    ResourceKind::Xhr,
];

/// SplitMix64 step: derives independent field values from one seed.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick<'a, T: ?Sized>(seed: &mut u64, pool: &'a [&'a T]) -> &'a T {
    pool[(next(seed) % pool.len() as u64) as usize]
}

/// Renders one rule line from a seed: anchored / path / start-anchored /
/// wildcard bodies, optionally an exception, optionally `$` options
/// (third-party, resource kinds, `domain=` lists).
fn rule_from_seed(mut seed: u64) -> String {
    let s = &mut seed;
    let mut rule = String::new();
    if next(s).is_multiple_of(4) {
        rule.push_str("@@");
    }
    match next(s) % 5 {
        // ||anchor^ or ||anchor/segment
        0 | 1 => {
            rule.push_str("||");
            rule.push_str(pick(s, DOMAINS));
            if next(s).is_multiple_of(2) {
                rule.push('^');
            } else {
                rule.push('/');
                rule.push_str(pick(s, SEGMENTS));
            }
        }
        // /segment/ or /segment/segment
        2 => {
            rule.push('/');
            rule.push_str(pick(s, SEGMENTS));
            rule.push('/');
            if next(s).is_multiple_of(2) {
                rule.push_str(pick(s, SEGMENTS));
            }
        }
        // |https://sub.domain.
        3 => {
            rule.push_str("|https://");
            rule.push_str(pick(s, SUBDOMAINS));
            rule.push_str(pick(s, DOMAINS));
            rule.push('.');
        }
        // Wildcards: /segment/*/segment^ or *segment* (the latter has no
        // safe token and lands in the always-scan list).
        _ => {
            if next(s).is_multiple_of(2) {
                rule.push('/');
                rule.push_str(pick(s, SEGMENTS));
                rule.push_str("/*/");
                rule.push_str(pick(s, SEGMENTS));
                rule.push('^');
            } else {
                rule.push('*');
                rule.push_str(pick(s, SEGMENTS));
                rule.push('*');
            }
        }
    }
    let mut opts: Vec<String> = Vec::new();
    if next(s).is_multiple_of(4) {
        opts.push(if next(s).is_multiple_of(2) {
            "third-party".to_string()
        } else {
            "~third-party".to_string()
        });
    }
    if next(s).is_multiple_of(4) {
        opts.push(pick(s, &["script", "image", "~script", "~image"]).to_string());
    }
    if next(s).is_multiple_of(4) {
        let mut domains = String::from("domain=");
        if next(s).is_multiple_of(2) {
            domains.push('~');
        }
        domains.push_str(pick(s, DOMAINS));
        if next(s).is_multiple_of(2) {
            domains.push('|');
            if next(s).is_multiple_of(2) {
                domains.push('~');
            }
            domains.push_str(pick(s, DOMAINS));
        }
        opts.push(domains);
    }
    if !opts.is_empty() {
        rule.push('$');
        rule.push_str(&opts.join(","));
    }
    rule
}

/// One generated request: URL, page host, request host, resource kind.
fn query_from_seed(mut seed: u64) -> (String, String, String, ResourceKind) {
    let s = &mut seed;
    let request_host = format!("{}{}", pick(s, SUBDOMAINS), pick(s, DOMAINS));
    let mut url = format!("https://{request_host}/{}", pick(s, SEGMENTS));
    if next(s).is_multiple_of(2) {
        url.push('/');
        url.push_str(pick(s, SEGMENTS));
    }
    if next(s).is_multiple_of(3) {
        url.push_str("/img.gif?x=1");
    }
    let page_host = format!("{}{}", pick(s, SUBDOMAINS), pick(s, DOMAINS));
    let kind = KINDS[(next(s) % KINDS.len() as u64) as usize];
    (url, page_host, request_host, kind)
}

proptest! {
    #[test]
    fn indexed_matches_equal_linear_reference(
        rule_seeds in vec(any::<u64>(), 1..40),
        query_seeds in vec(any::<u64>(), 1..60),
    ) {
        let list: String = rule_seeds
            .iter()
            .map(|&s| rule_from_seed(s))
            .collect::<Vec<_>>()
            .join("\n");
        let mut indexed = FilterSet::new();
        let mut linear = LinearFilterSet::new();
        prop_assert_eq!(indexed.add_list(&list), linear.add_list(&list));
        // The Aho-Corasick tier must never change a verdict: pin the fully
        // prefiltered engine against the linear oracle.
        indexed.build_prefilter();
        for &qs in &query_seeds {
            let (url, page_host, request_host, kind) = query_from_seed(qs);
            let ctx = RequestContext::new(&page_host, &request_host, kind);
            prop_assert_eq!(
                indexed.matches(&url, &ctx),
                linear.matches(&url, &ctx),
                "url={} page={} kind={:?}\nlist:\n{}",
                url,
                page_host,
                kind,
                list
            );
            prop_assert_eq!(
                indexed.matches_fqdn_relaxed(&request_host),
                linear.matches_fqdn_relaxed(&request_host),
                "fqdn={}\nlist:\n{}",
                request_host,
                list
            );
        }
    }
}
