//! §7.2 — age verification across countries.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::agegate;
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_crawler::selenium::SeleniumCrawler;
use redlight_net::geoip::Country;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::tiny();
    let top: Vec<String> = f.ranked_domains().into_iter().take(10).collect();
    let per_country: Vec<_> = [Country::Usa, Country::Uk, Country::Spain, Country::Russia]
        .into_iter()
        .map(|country| SeleniumCrawler::new(&f.world, country).crawl(&top))
        .collect();
    let cmp = agegate::compare(&per_country);
    for cg in &cmp.per_country {
        println!(
            "§7.2 {}: {}/{} gated ({:.0}%), {} bypassed, {} social-login",
            cg.country.name(),
            cg.with_gate,
            cg.studied,
            cg.with_gate_pct,
            cg.bypassed,
            cg.social_login
        );
    }
    println!(
        "russia-only {:.0}% (paper 8%), not-in-russia {:.0}% (paper 12%), bypass rate {:.0}%",
        cmp.russia_only_pct, cmp.not_in_russia_pct, cmp.bypass_rate_pct
    );

    c.bench_function("agegate/interaction_crawl_top10", |b| {
        b.iter(|| SeleniumCrawler::new(&f.world, Country::Russia).crawl(black_box(&top)))
    });
    c.bench_function("agegate/comparison", |b| {
        b.iter(|| agegate::compare(black_box(&per_country)))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
