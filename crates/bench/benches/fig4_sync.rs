//! Fig. 4 + §5.1.2 — cookie-synchronization detection.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::sync;
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let ranked = f.ranked_domains();
    let report = sync::detect(&f.porn, &ranked, 100);
    println!(
        "§5.1.2: syncing on {} sites; {} pairs; {} origins; {} destinations; top-100 {:.0}% — \
         paper: 2,867; 4,675; 1,120; 727; 58%",
        report.sites_with_sync,
        report.pairs.len(),
        report.origins,
        report.destinations,
        report.top_sites_with_sync_pct,
    );
    for (pair, n) in report.heavy_pairs(4).into_iter().take(8) {
        println!("  {:<20} → {:<20} {n}", pair.origin, pair.destination);
    }

    c.bench_function("fig4/sync_detection", |b| {
        b.iter(|| sync::detect(black_box(&f.porn), black_box(&ranked), 100))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
