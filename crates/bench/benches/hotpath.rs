//! Hot-path sweep: batched vs per-request ATS classification over the same
//! measurement database, at 1×/4×/16× world growth.
//!
//! For each factor the bench collects the tiny-world database once, then
//! classifies every answered request of every successful visit two ways
//! with a cold classifier each time:
//!
//! * **per-request** — the pre-batching hot path: render the fragmentless
//!   URL string and the two host strings for every occurrence and call
//!   [`AtsClassifier::is_ats_url`] each time (the string-keyed memo absorbs
//!   duplicates, but every occurrence still pays rendering + string
//!   hashing).
//! * **batch** — [`AtsClassifier::classify_batch`] per crawl (one verdict
//!   per distinct interned key, keys grouped by request FQDN), then one
//!   Sym-keyed [`AtsVerdicts::request_verdict`] column lookup per
//!   occurrence.
//!
//! Both paths must agree on every verdict; the bench asserts the summed
//! verdicts match before it reports. Results land in `BENCH_hotpath.json`
//! at the repo root: requests/second for both paths, allocations per visit
//! (via a counting global allocator), interned bytes per visit, and the
//! matcher's prefilter hit rate.
//!
//! ```sh
//! cargo bench -p redlight-bench --bench hotpath            # full sweep + JSON
//! cargo bench -p redlight-bench --bench hotpath -- --test  # 1× smoke (still writes JSON)
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use redlight_analysis::ats::{AtsClassifier, AtsVerdicts};
use redlight_core::{Study, StudyConfig};
use redlight_crawler::db::MeasurementDb;
use redlight_net::psl::HostCache;
use redlight_websim::World;

/// Counts every heap allocation so the sweep can report allocations per
/// visit for both classification paths.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Row {
    factor: usize,
    requests: usize,
    visits: usize,
    per_request_rps: f64,
    batch_rps: f64,
    speedup: f64,
    per_request_allocs_per_visit: f64,
    batch_allocs_per_visit: f64,
    interned_bytes_per_visit: f64,
    prefilter_hit_rate: f64,
}

fn fresh_classifier(world: &World) -> AtsClassifier {
    AtsClassifier::with_hosts(
        &world.easylist,
        &world.easyprivacy,
        Arc::new(HostCache::new()),
    )
}

/// The pre-batching hot path: strings rendered and classified per
/// occurrence. Returns (occurrences, blocked verdicts).
fn classify_per_request(db: &MeasurementDb, classifier: &AtsClassifier) -> (usize, usize) {
    let mut requests = 0usize;
    let mut blocked = 0usize;
    for crawl in db.crawls() {
        for record in crawl.full().successful() {
            let Some(final_url) = record.visit.final_url.as_ref() else {
                continue;
            };
            let page = final_url.host().as_str();
            for req in &record.visit.requests {
                if req.status.is_none() {
                    continue;
                }
                requests += 1;
                blocked += usize::from(classifier.is_ats_url(
                    &req.url.without_fragment(),
                    page,
                    req.url.host().as_str(),
                    req.kind,
                ));
            }
        }
    }
    (requests, blocked)
}

/// The batched path: one column per crawl, one Sym-keyed lookup per
/// occurrence. Returns (occurrences, blocked verdicts).
fn classify_batched(db: &MeasurementDb, classifier: &AtsClassifier) -> (usize, usize) {
    let mut requests = 0usize;
    let mut blocked = 0usize;
    for crawl in db.crawls() {
        let batch = classifier.classify_batch(crawl.full());
        let ats = AtsVerdicts::with_batch(classifier, &batch);
        for record in crawl.full().successful() {
            let Some(page) = record.final_host else {
                continue;
            };
            for (i, req) in record.visit.requests.iter().enumerate() {
                if req.status.is_none() {
                    continue;
                }
                requests += 1;
                blocked += usize::from(ats.request_verdict(crawl.names(), record, page, i));
            }
        }
    }
    (requests, blocked)
}

/// Best-of-`reps` wall time and the allocation count of one run of `f`,
/// with a cold classifier per rep so no rep inherits a warm verdict memo.
fn measure(
    world: &World,
    db: &MeasurementDb,
    reps: usize,
    f: impl Fn(&MeasurementDb, &AtsClassifier) -> (usize, usize),
) -> (f64, u64, usize, usize, AtsClassifier) {
    let mut best_wall = f64::INFINITY;
    let mut allocs = 0u64;
    let mut counts = (0usize, 0usize);
    let mut last = None;
    for _ in 0..reps.max(1) {
        let classifier = fresh_classifier(world);
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        counts = f(db, &classifier);
        let wall = t0.elapsed().as_secs_f64();
        if wall < best_wall {
            best_wall = wall;
            allocs = ALLOCS.load(Ordering::Relaxed) - a0;
        }
        last = Some(classifier);
    }
    let classifier = last.expect("at least one rep ran");
    (best_wall, allocs, counts.0, counts.1, classifier)
}

fn sweep(factor: usize, reps: usize) -> Row {
    let mut config = StudyConfig::tiny(2019);
    config.world = config.world.scaled(factor);
    let world = World::build(config.world.clone());
    let (db, _) = Study::collect_db(&world, &config);

    let (base_wall, base_allocs, base_requests, base_blocked, _) =
        measure(&world, &db, reps, classify_per_request);
    let (batch_wall, batch_allocs, batch_requests, batch_blocked, batch_classifier) =
        measure(&world, &db, reps, classify_batched);
    assert_eq!(base_requests, batch_requests, "same occurrence walk");
    assert_eq!(
        base_blocked, batch_blocked,
        "batched verdicts diverged from per-request verdicts"
    );

    let visits: usize = db.crawls().iter().map(|c| c.visits.len()).sum();
    let interned_bytes: usize = db.crawls().iter().map(|c| c.names().arena_bytes()).sum();
    let pre = batch_classifier.prefilter_stats();
    Row {
        factor,
        requests: base_requests,
        visits,
        per_request_rps: base_requests as f64 / base_wall.max(1e-9),
        batch_rps: batch_requests as f64 / batch_wall.max(1e-9),
        speedup: base_wall / batch_wall.max(1e-9),
        per_request_allocs_per_visit: base_allocs as f64 / visits.max(1) as f64,
        batch_allocs_per_visit: batch_allocs as f64 / visits.max(1) as f64,
        interned_bytes_per_visit: interned_bytes as f64 / visits.max(1) as f64,
        prefilter_hit_rate: pre.hits as f64 / (pre.hits + pre.misses).max(1) as f64,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\"bench\":\"hotpath\",\"world\":\"tiny\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"scale\":{},\"requests\":{},\"visits\":{},\"per_request_rps\":{:.1},\
             \"batch_rps\":{:.1},\"speedup\":{:.2},\"per_request_allocs_per_visit\":{:.1},\
             \"batch_allocs_per_visit\":{:.1},\"interned_bytes_per_visit\":{:.1},\
             \"prefilter_hit_rate\":{:.3}}}",
            r.factor,
            r.requests,
            r.visits,
            r.per_request_rps,
            r.batch_rps,
            r.speedup,
            r.per_request_allocs_per_visit,
            r.batch_allocs_per_visit,
            r.interned_bytes_per_visit,
            r.prefilter_hit_rate
        ));
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let factors: &[usize] = if test_mode { &[1] } else { &[1, 4, 16] };

    if !test_mode {
        // Throwaway warm-up run: allocator and page-cache warmup should not
        // penalize the first measured factor.
        sweep(1, 1);
    }

    let mut rows = Vec::new();
    for &factor in factors {
        let reps = if test_mode {
            1
        } else {
            (16 / factor).clamp(1, 5)
        };
        let row = sweep(factor, reps);
        println!(
            "scale {:>2}x: {:>7} requests / {:>6} visits — {:>9.0} rps per-request, \
             {:>9.0} rps batched ({:.2}x), allocs/visit {:>6.1} → {:>6.1}, \
             prefilter hit rate {:.1}%",
            row.factor,
            row.requests,
            row.visits,
            row.per_request_rps,
            row.batch_rps,
            row.speedup,
            row.per_request_allocs_per_visit,
            row.batch_allocs_per_visit,
            100.0 * row.prefilter_hit_rate
        );
        rows.push(row);
    }

    if !test_mode {
        // Guardrails: batching must actually win at the top scale, and its
        // allocation footprint must stay flat as the corpus grows.
        let base = &rows[0];
        let top = rows.last().expect("at least one row");
        assert!(
            top.speedup >= 2.0,
            "batched classification only {:.2}x faster at {}x (want >= 2x)",
            top.speedup,
            top.factor
        );
        assert!(
            top.batch_allocs_per_visit <= 1.5 * base.batch_allocs_per_visit.max(1.0),
            "batch allocations grew superlinearly: {:.1}/visit at {}x vs {:.1} at 1x",
            top.batch_allocs_per_visit,
            top.factor,
            base.batch_allocs_per_visit
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    std::fs::write(path, json(&rows)).expect("write BENCH_hotpath.json");
    println!("wrote {path}");
}
