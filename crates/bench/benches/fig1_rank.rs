//! Fig. 1 — rank stability of the porn corpus over 2018.
//!
//! Prints the regenerated figure (best/median/presence series) and times
//! the Fig. 1 computation over the longitudinal rank dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::popularity;
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_report::figure::{render, Series};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let histories: BTreeMap<_, _> = f
        .world
        .rank_histories()
        .into_iter()
        .filter(|(d, _)| f.corpus.sanitized.contains(d))
        .collect();

    let fig = popularity::fig1(&histories);
    let best: Vec<f64> = fig
        .points
        .iter()
        .filter_map(|p| p.best.map(|b| b as f64))
        .collect();
    let presence: Vec<f64> = fig.points.iter().map(|p| p.presence * 100.0).collect();
    println!(
        "{}",
        render(
            "Fig. 1 (regenerated)",
            &[
                Series::new("best rank", best),
                Series::new("% days in top-1M", presence)
            ],
            60,
        )
    );
    println!(
        "always in top-1M: {} ({:.1}%)   always in top-1k: {}   [paper: 1,103 (16%), 16]",
        fig.always_top1m, fig.always_top1m_pct, fig.always_top1k
    );

    c.bench_function("fig1/rank_stability", |b| {
        b.iter(|| popularity::fig1(black_box(&histories)))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
