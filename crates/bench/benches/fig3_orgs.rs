//! Fig. 3 — parent-company attribution and organization prevalence.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::{orgs, thirdparty};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let porn_extract = thirdparty::extract(&f.porn, true);
    let world = &f.world;
    let probe = |host: &str| -> Option<redlight_net::tls::CertSummary> {
        world.resolve_host(host)?;
        Some((&world.cert_for_host(host)).into())
    };
    let attributor =
        orgs::OrgAttributor::new(&world.disconnect, &[&f.porn, &f.regular], Some(&probe));
    let stats = attributor.coverage(&porn_extract);
    println!(
        "attribution: {}/{} FQDNs ({:.0}%), {} companies, Disconnect alone {} — paper: 4,477/6,017 (74%), 1,014, 142",
        stats.resolved_fqdns,
        stats.total_fqdns,
        100.0 * stats.resolved_fqdns as f64 / stats.total_fqdns.max(1) as f64,
        stats.companies,
        stats.resolved_by_disconnect,
    );
    for org in attributor
        .prevalence(&porn_extract, f.porn.success_count())
        .iter()
        .take(10)
    {
        println!("  {:<26} {:>5.1}%", org.organization, org.fraction * 100.0);
    }

    c.bench_function("fig3/org_prevalence", |b| {
        b.iter(|| attributor.prevalence(black_box(&porn_extract), f.porn.success_count()))
    });
    c.bench_function("fig3/attribution_coverage", |b| {
        b.iter(|| attributor.coverage(black_box(&porn_extract)))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
