//! Table 3 — third-party presence by popularity interval.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::{popularity, thirdparty};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let histories: BTreeMap<_, _> = f.world.rank_histories().into_iter().collect();
    let tier_of = popularity::tiers_from_histories(&histories);
    let extract = thirdparty::extract(&f.porn, true);
    let t3 = popularity::table3(&extract, &tier_of);
    for row in &t3.rows {
        println!(
            "Table 3 {}: {} sites, {} third-party ({} unique)",
            row.tier.label(),
            row.sites,
            row.third_party_total,
            row.third_party_unique
        );
    }
    println!(
        "in all tiers: {:.1}% (paper 3%)   only unpopular: {:.1}% (paper 18%)",
        t3.in_all_tiers_pct, t3.only_unpopular_pct
    );

    c.bench_function("table3/tier_breakdown", |b| {
        b.iter(|| popularity::table3(black_box(&extract), black_box(&tier_of)))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
