//! Table 6 + §5.2 — HTTPS posture.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::{https, popularity};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let histories: BTreeMap<_, _> = f.world.rank_histories().into_iter().collect();
    let tier_of = popularity::tiers_from_histories(&histories);
    let client_ip = f.porn.client_ip;
    let report = https::report(&f.porn, &tier_of, client_ip);
    for row in &report.rows {
        println!(
            "Table 6 {}: {} sites {:.0}% https / {} third-party FQDNs {:.0}% https",
            row.tier.label(),
            row.sites,
            row.sites_https_pct,
            row.third_party_fqdns,
            row.third_party_https_pct
        );
    }
    println!("paper tiers: 92/63/32/22% sites, 90/48/25/16% third parties");
    println!(
        "not fully https: {:.0}% (paper 68%); sensitive cookies in clear: {:.0}% of those (paper 8%)",
        report.not_fully_https_pct, report.clear_cookie_pct
    );

    c.bench_function("table6/https_report", |b| {
        b.iter(|| https::report(black_box(&f.porn), black_box(&tier_of), client_ip))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
