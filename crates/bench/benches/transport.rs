//! Transport-seam overhead — the cost of the `Box<dyn Transport>`
//! indirection the browser now fetches through, measured against calling
//! `WebServer::handle` directly, plus the full default decorator stack
//! (metered, no faults) the crawlers actually assemble.
//!
//! The seam is only acceptable if the dynamic dispatch and the metering
//! atomics disappear into the noise of serving a request, so the three
//! benches replay the identical request workload through each path.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_net::geoip::Country;
use redlight_net::http::{Request, ResourceKind};
use redlight_net::transport::{
    BrowserKind, ClientContext, FetchOutcome, NetProfile, Transport, TransportMeter,
};
use redlight_net::url::Url;
use redlight_websim::WebServer;
use std::hint::black_box;
use std::net::Ipv4Addr;

/// Landing-page requests for every site of the tiny porn corpus.
fn workload(f: &Fixture) -> Vec<Request> {
    f.corpus
        .sanitized
        .iter()
        .filter_map(|d| Url::parse(&format!("https://{d}/")).ok())
        .map(|url| Request::get(url, ResourceKind::Document))
        .collect()
}

fn served(outcome: FetchOutcome) -> usize {
    match outcome {
        FetchOutcome::Response(_) => 1,
        _ => 0,
    }
}

fn bench(c: &mut Criterion) {
    let f = Fixture::tiny();
    let reqs = workload(&f);
    let ctx = ClientContext {
        country: Country::Spain,
        client_ip: Ipv4Addr::new(83, 44, 0, 1),
        session: redlight_bench::BENCH_SEED,
        browser: BrowserKind::OpenWpm,
    };

    let direct = WebServer::new(&f.world);
    let ok: usize = reqs.iter().map(|r| served(direct.handle(r, &ctx))).sum();
    println!("transport workload: {} requests, {} served", reqs.len(), ok);

    c.bench_function("transport/direct_handle", |b| {
        let server = WebServer::new(&f.world);
        b.iter(|| {
            let mut ok = 0usize;
            for r in &reqs {
                ok += served(server.handle(black_box(r), &ctx));
            }
            ok
        })
    });

    c.bench_function("transport/boxed_dyn", |b| {
        let boxed: Box<dyn Transport> = Box::new(WebServer::new(&f.world));
        b.iter(|| {
            let mut ok = 0usize;
            for r in &reqs {
                ok += served(boxed.fetch(black_box(r), &ctx));
            }
            ok
        })
    });

    c.bench_function("transport/default_stack", |b| {
        let meter = TransportMeter::new();
        let stack = NetProfile::default().stack(WebServer::new(&f.world), &meter);
        b.iter(|| {
            let mut ok = 0usize;
            for r in &reqs {
                ok += served(stack.fetch(black_box(r), &ctx));
            }
            ok
        });
        let stats = meter.snapshot();
        println!(
            "transport meter saw {} requests, {} KiB",
            stats.requests,
            stats.body_bytes / 1024
        );
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
