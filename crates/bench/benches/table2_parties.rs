//! Table 2 — first/third-party domain counts, porn vs regular.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::{ats, thirdparty};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let classifier = f.classifier();
    let porn_extract = thirdparty::extract(&f.porn, true);
    let regular_extract = thirdparty::extract(&f.regular, true);
    let t2 = ats::table2(
        &f.porn,
        &porn_extract,
        &f.regular,
        &regular_extract,
        ats::AtsVerdicts::new(&classifier),
    );
    println!(
        "Table 2 (regenerated): porn 3rd-party {} / regular 3rd-party {} / ATS {}+{} (∩ {})",
        t2.porn_third_party,
        t2.regular_third_party,
        t2.porn_ats,
        t2.regular_ats,
        t2.ats_intersection
    );
    println!("paper: 5,457 / 21,128 / 663+196 (∩ 86) at 20× this scale");

    c.bench_function("table2/third_party_extraction", |b| {
        b.iter(|| thirdparty::extract(black_box(&f.porn), true))
    });
    c.bench_function("table2/ats_classification", |b| {
        b.iter(|| {
            ats::table2(
                black_box(&f.porn),
                black_box(&porn_extract),
                black_box(&f.regular),
                black_box(&regular_extract),
                ats::AtsVerdicts::new(black_box(&classifier)),
            )
        })
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
