//! Traffic-kernel sweep: the discrete-event visitor workload at rising
//! session counts, up to one million simulated visitors.
//!
//! Each point runs [`run_traffic`] over the tiny world with the default
//! sim profile and reports kernel throughput (events and sessions per
//! *wall* second), logical throughput, and the request/page latency
//! percentiles the `obs` histograms saw. A same-seed re-run at the
//! smallest scale pins determinism — the rendered report must be
//! byte-identical. Results land in `BENCH_traffic.json` at the repo root.
//!
//! ```sh
//! cargo bench -p redlight-bench --bench traffic            # full sweep + JSON
//! cargo bench -p redlight-bench --bench traffic -- --test  # small smoke (still writes JSON)
//! ```

use std::time::Instant;

use redlight_obs::ObsContext;
use redlight_sim::{run_traffic, TrafficConfig, TrafficReport};
use redlight_websim::WorldConfig;

struct Row {
    sessions: u64,
    report: TrafficReport,
    /// Wall time of the whole run (world build + harvest + kernel).
    total_wall: f64,
}

fn config(sessions: u64) -> TrafficConfig {
    TrafficConfig {
        world: WorldConfig::tiny(2019),
        ..TrafficConfig::new(sessions)
    }
}

fn run(sessions: u64) -> Row {
    let t0 = Instant::now();
    let report = run_traffic(&config(sessions), &ObsContext::new());
    Row {
        sessions,
        total_wall: t0.elapsed().as_secs_f64(),
        report,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\"bench\":\"traffic\",\"world\":\"tiny\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rep = &r.report;
        let kernel_wall = rep.wall.as_secs_f64().max(1e-9);
        out.push_str(&format!(
            "{{\"sessions\":{},\"events\":{},\"requests\":{},\
             \"events_per_wall_sec\":{:.0},\"sessions_per_wall_sec\":{:.0},\
             \"logical_sessions_per_sec\":{:.1},\"logical_requests_per_sec\":{:.1},\
             \"makespan_s\":{:.3},\"request_p50_us\":{},\"request_p95_us\":{},\
             \"request_p99_us\":{},\"page_p50_us\":{},\"page_p99_us\":{},\
             \"peak_in_flight\":{},\"peak_queue\":{},\"kernel_wall_s\":{:.3},\
             \"total_wall_s\":{:.3}}}",
            r.sessions,
            rep.events,
            rep.requests,
            rep.events as f64 / kernel_wall,
            (rep.completed + rep.failed) as f64 / kernel_wall,
            rep.sessions_per_sec(),
            rep.requests_per_sec(),
            rep.makespan.as_secs_f64(),
            rep.request_p50_us,
            rep.request_p95_us,
            rep.request_p99_us,
            rep.page_p50_us,
            rep.page_p99_us,
            rep.peak_in_flight,
            rep.peak_queue,
            rep.wall.as_secs_f64(),
            r.total_wall,
        ));
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let scales: &[u64] = if test_mode {
        &[2_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    // Determinism pin: the same seed must render byte-identically.
    let pin = scales[0];
    let a = run_traffic(&config(pin), &ObsContext::new());
    let b = run_traffic(&config(pin), &ObsContext::new());
    assert_eq!(
        a.render(),
        b.render(),
        "same-seed traffic reports must be byte-identical"
    );

    let mut rows = Vec::new();
    for &sessions in scales {
        let row = run(sessions);
        let rep = &row.report;
        assert_eq!(
            rep.completed + rep.failed,
            sessions,
            "every session must finish"
        );
        assert!(rep.request_p99_us >= rep.request_p50_us, "p99 ≥ p50");
        assert!(rep.makespan.as_secs_f64() > 0.0);
        println!(
            "{:>9} sessions: {:>9} events in {:>7.2}s wall ({:>9.0} ev/s) — \
             logical {:>6.1} sessions/s, request p50 {} µs p99 {} µs, \
             peak in-flight {}",
            row.sessions,
            rep.events,
            rep.wall.as_secs_f64(),
            rep.events as f64 / rep.wall.as_secs_f64().max(1e-9),
            rep.sessions_per_sec(),
            rep.request_p50_us,
            rep.request_p99_us,
            rep.peak_in_flight,
        );
        rows.push(row);
    }

    if !test_mode {
        // Guardrail: kernel throughput must not collapse at the top scale —
        // memory stays bounded, so events/second should be roughly flat.
        let base = &rows[0];
        let top = rows.last().expect("at least one row");
        let base_rate = base.report.events as f64 / base.report.wall.as_secs_f64().max(1e-9);
        let top_rate = top.report.events as f64 / top.report.wall.as_secs_f64().max(1e-9);
        assert!(
            top_rate >= base_rate / 4.0,
            "kernel throughput collapsed at scale: {top_rate:.0} ev/s at {} vs {base_rate:.0} at {}",
            top.sessions,
            base.sessions
        );
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_traffic.json");
    std::fs::write(path, json(&rows)).expect("write BENCH_traffic.json");
    println!("wrote {path}");
}
