//! Table 5 + §5.1.3/§5.1.4 — fingerprinting detection.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::ats::AtsVerdicts;
use redlight_analysis::{fingerprint, thirdparty, webrtc};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let classifier = f.classifier();
    let fp = fingerprint::detect(&f.porn, AtsVerdicts::new(&classifier));
    let rtc = webrtc::detect(&f.porn, AtsVerdicts::new(&classifier));
    println!(
        "canvas: {} scripts / {} sites / {} services; {:.0}% third-party; {:.0}% unindexed; {} decoys rejected",
        fp.canvas_scripts.len(),
        fp.canvas_sites.len(),
        fp.canvas_services.len(),
        fp.third_party_script_pct,
        fp.unindexed_pct,
        fp.rejected_executions,
    );
    println!("paper: 245 / 315 / 49; 74%; 91%");
    println!(
        "font: {} script(s) on {} site(s) [paper: 1] — webrtc: {} scripts / {} sites / {} services ({} ATS) [paper: 27/177/13 (2)]",
        fp.font_scripts.len(),
        fp.font_sites.len(),
        rtc.scripts.len(),
        rtc.sites.len(),
        rtc.services.len(),
        rtc.ats_services.len(),
    );
    let porn_extract = thirdparty::extract(&f.porn, true);
    let regular_extract = thirdparty::extract(&f.regular, true);
    for row in fingerprint::table5(
        &fp,
        &rtc,
        &porn_extract,
        &regular_extract,
        AtsVerdicts::new(&classifier),
        10,
    ) {
        println!(
            "  {:<24} {:>4} sites  canvas {:>2}  webrtc {:>2}  ats {}",
            row.domain, row.presence, row.canvas_scripts, row.webrtc_scripts, row.is_ats
        );
    }

    c.bench_function("table5/canvas_detection", |b| {
        b.iter(|| fingerprint::detect(black_box(&f.porn), AtsVerdicts::new(black_box(&classifier))))
    });
    c.bench_function("table5/webrtc_detection", |b| {
        b.iter(|| webrtc::detect(black_box(&f.porn), AtsVerdicts::new(black_box(&classifier))))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
