//! Ablations of the study's design choices (DESIGN.md §4).
//!
//! 1. Levenshtein same-entity threshold (0.7 in the paper) — precision /
//!    recall of first-party attribution against world ground truth;
//! 2. the ID-cookie minimum length (6 chars);
//! 3. cookie-sync minimum value length (whole-value matching floor);
//! 4. the font-fingerprinting `measureText` threshold (50 calls);
//! 5. Disconnect-only vs Disconnect + X.509 attribution (the 142 → 4,477
//!    coverage jump).

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::ats::AtsVerdicts;
use redlight_analysis::{cookies, fingerprint, orgs, thirdparty};
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_text::levenshtein;
use std::hint::black_box;

fn ablate_levenshtein(f: &Fixture) {
    println!("-- ablation 1: Levenshtein same-entity threshold --");
    // Ground truth: FQDN pairs that belong to the same service.
    let mut same: Vec<(String, String)> = Vec::new();
    let mut diff: Vec<(String, String)> = Vec::new();
    let services: Vec<_> = f.world.services.iter().collect();
    for (i, a) in services.iter().enumerate() {
        let fqdns: Vec<&str> = a.all_fqdns().collect();
        for w in fqdns.windows(2) {
            same.push((w[0].to_string(), w[1].to_string()));
        }
        if let Some(b) = services.get(i + 1) {
            diff.push((a.fqdn.clone(), b.fqdn.clone()));
        }
    }
    for threshold in [0.5, 0.6, 0.7, 0.8, 0.9] {
        let tp = same
            .iter()
            .filter(|(a, b)| levenshtein::similarity(a, b) >= threshold)
            .count();
        let fp = diff
            .iter()
            .filter(|(a, b)| levenshtein::similarity(a, b) >= threshold)
            .count();
        println!(
            "  threshold {threshold:.1}: recall {}/{} same-entity pairs, {} false merges of {}",
            tp,
            same.len(),
            fp,
            diff.len()
        );
    }
}

fn ablate_cookie_len(f: &Fixture) {
    println!("-- ablation 2: ID-cookie minimum length --");
    let rows = cookies::collect(&f.porn);
    for min_len in [0usize, 4, 6, 8, 12, 24] {
        let kept = rows
            .iter()
            .filter(|r| !r.session && r.value.chars().count() >= min_len)
            .count();
        println!("  min_len {min_len:>2}: {kept} cookies survive (paper rule: 6)");
    }
}

fn ablate_sync_options(f: &Fixture) {
    println!("-- ablation 3: sync matching rules (value floor × delimiter splitting) --");
    use redlight_analysis::sync::{detect_with_options, SyncOptions};
    let ranked = f.ranked_domains();
    for (floor, split) in [(8usize, false), (4, false), (16, false), (8, true)] {
        let report = detect_with_options(
            &f.porn,
            &ranked,
            100,
            SyncOptions {
                min_value_len: floor,
                split_delimiters: split,
            },
        );
        println!(
            "  floor {floor:>2}, split={split:<5}: {:>5} pairs on {:>4} sites, {:>4} origins              (paper rule: floor 8, no splitting — splitting drags first-party              analytics beacons in as false syncs)",
            report.pairs.len(),
            report.sites_with_sync,
            report.origins,
        );
    }
}

fn ablate_font_threshold(f: &Fixture) {
    println!("-- ablation 4: font-fingerprinting measureText threshold --");
    for threshold in [10usize, 25, 50, 100] {
        let mut scripts = std::collections::BTreeSet::new();
        for record in f.porn.successful() {
            for (script, activity) in &record.visit.canvas {
                if activity.fonts_set == 0 {
                    continue;
                }
                let mut per_text = std::collections::BTreeMap::new();
                for (_, text) in &activity.measured {
                    *per_text.entry(text.clone()).or_insert(0usize) += 1;
                }
                if per_text.values().any(|&n| n >= threshold) {
                    scripts.insert(format!("{script:?}"));
                }
            }
        }
        println!(
            "  ≥{threshold:>3} same-text calls: {} scripts flagged (paper rule: 50 → exactly 1)",
            scripts.len()
        );
    }
}

fn ablate_attribution(f: &Fixture) {
    println!("-- ablation 5: Disconnect-only vs Disconnect + X.509 --");
    let extract = thirdparty::extract(&f.porn, true);
    let disconnect_only = orgs::OrgAttributor::new(&f.world.disconnect, &[&f.porn], None);
    let world = &f.world;
    let probe = |host: &str| -> Option<redlight_net::tls::CertSummary> {
        world.resolve_host(host)?;
        Some((&world.cert_for_host(host)).into())
    };
    let with_certs = orgs::OrgAttributor::new(&f.world.disconnect, &[&f.porn], Some(&probe));
    let a = disconnect_only.coverage(&extract);
    let b = with_certs.coverage(&extract);
    println!(
        "  Disconnect only:      {}/{} FQDNs, {} companies (paper: 142)",
        a.resolved_fqdns, a.total_fqdns, a.companies
    );
    println!(
        "  + X.509 organizations: {}/{} FQDNs, {} companies (paper: 4,477 / 1,014)",
        b.resolved_fqdns, b.total_fqdns, b.companies
    );
}

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    ablate_levenshtein(&f);
    ablate_cookie_len(&f);
    ablate_sync_options(&f);
    ablate_font_threshold(&f);
    ablate_attribution(&f);

    // Time the two knob-sensitive kernels.
    c.bench_function("ablations/levenshtein_similarity", |b| {
        b.iter(|| {
            levenshtein::similarity(black_box("doublepimp.com"), black_box("doublepimpssl.com"))
        })
    });
    let rows = cookies::collect(&f.porn);
    c.bench_function("ablations/id_filter", |b| {
        b.iter(|| rows.iter().filter(|r| cookies::is_id_cookie(r)).count())
    });
    let classifier = f.classifier();
    c.bench_function("ablations/fingerprint_criteria", |b| {
        b.iter(|| fingerprint::detect(black_box(&f.porn), AtsVerdicts::new(black_box(&classifier))))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
