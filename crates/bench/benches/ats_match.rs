//! ATS matching engine — token-indexed `FilterSet` vs the linear-scan
//! reference, plus the memoized `AtsClassifier` warm path.
//!
//! The workload is every completed request of the Spanish porn crawl
//! (url, page host, request host, resource kind). Before timing anything
//! the bench asserts that the tokenized matcher agrees with
//! [`LinearFilterSet`] on every single request, so the numbers always
//! compare equivalent engines.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_blocklist::filter::RequestContext;
use redlight_blocklist::{FilterSet, LinearFilterSet};
use redlight_net::http::ResourceKind;
use std::hint::black_box;

/// One request of the replayed workload.
struct Req {
    url: String,
    page_host: String,
    request_host: String,
    kind: ResourceKind,
}

fn workload(f: &Fixture) -> Vec<Req> {
    let mut reqs = Vec::new();
    for record in f.porn.successful() {
        let Some(final_url) = &record.visit.final_url else {
            continue;
        };
        let page_host = final_url.host().as_str();
        for req in &record.visit.requests {
            if req.status.is_none() {
                continue;
            }
            reqs.push(Req {
                url: req.url.without_fragment(),
                page_host: page_host.to_string(),
                request_host: req.url.host().as_str().to_string(),
                kind: req.kind,
            });
        }
    }
    reqs
}

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let reqs = workload(&f);

    let mut indexed = FilterSet::new();
    indexed.add_list(&f.world.easylist);
    indexed.add_list(&f.world.easyprivacy);
    let mut linear = LinearFilterSet::new();
    linear.add_list(&f.world.easylist);
    linear.add_list(&f.world.easyprivacy);

    // Equivalence guard: the engines must agree on the entire workload
    // before their relative speed means anything.
    let mut blocked = 0usize;
    for r in &reqs {
        let ctx = RequestContext::new(&r.page_host, &r.request_host, r.kind);
        let a = indexed.matches(&r.url, &ctx);
        let b = linear.matches(&r.url, &ctx);
        assert_eq!(a, b, "engines disagree on {}", r.url);
        if a.is_blocked() {
            blocked += 1;
        }
    }
    println!(
        "ats_match workload: {} requests, {} blocked, {} rules",
        reqs.len(),
        blocked,
        indexed.len()
    );

    c.bench_function("ats_match/linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for r in &reqs {
                let ctx = RequestContext::new(&r.page_host, &r.request_host, r.kind);
                if linear.matches(black_box(&r.url), &ctx).is_blocked() {
                    hits += 1;
                }
            }
            hits
        })
    });

    c.bench_function("ats_match/token_index", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for r in &reqs {
                let ctx = RequestContext::new(&r.page_host, &r.request_host, r.kind);
                if indexed.matches(black_box(&r.url), &ctx).is_blocked() {
                    hits += 1;
                }
            }
            hits
        })
    });

    // Warm memoized classifier: prime the verdict cache once, then measure
    // the steady-state replay (the stage pipeline's second-and-later pass).
    let classifier = f.classifier();
    for r in &reqs {
        classifier.is_ats_url(&r.url, &r.page_host, &r.request_host, r.kind);
    }
    c.bench_function("ats_match/memoized_warm", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for r in &reqs {
                if classifier.is_ats_url(black_box(&r.url), &r.page_host, &r.request_host, r.kind) {
                    hits += 1;
                }
            }
            hits
        })
    });
    let (url_stats, _) = classifier.cache_stats();
    println!(
        "ats_match memo: {} hits / {} misses after replay",
        url_stats.hits, url_stats.misses
    );
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
