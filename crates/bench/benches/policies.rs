//! §7.3 — privacy-policy collection, similarity, disclosure annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::policies;
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_crawler::selenium::SeleniumCrawler;
use redlight_net::geoip::Country;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let interactions = SeleniumCrawler::new(&f.world, Country::Spain).crawl(&f.corpus.sanitized);
    let (docs, sanitized_out) = policies::collect(&interactions);
    let report = policies::report(&docs, sanitized_out, f.corpus.sanitized.len(), usize::MAX);
    println!(
        "§7.3: {} policies ({:.1}% of corpus, paper 16%); {} GDPR mentions ({:.0}%, paper 20%); \
         letters mean {:.0} [{} .. {}] (paper 17,159 [1,088 .. 243,649])",
        report.with_policy,
        report.with_policy_pct,
        report.gdpr_mentions,
        report.gdpr_pct,
        report.mean_letters,
        report.min_letters,
        report.max_letters,
    );
    println!(
        "similar pairs (TF-IDF ≥ 0.5): {:.1}% of {} (paper: 76% of 1,202,312)",
        report.similar_pairs_pct, report.pairs_examined
    );

    c.bench_function("policies/pairwise_tfidf", |b| {
        b.iter(|| {
            policies::report(
                black_box(&docs),
                sanitized_out,
                f.corpus.sanitized.len(),
                usize::MAX,
            )
        })
    });
    c.bench_function("policies/annotation", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| policies::annotate(&d.text))
                .filter(|a| a.discloses_cookies)
                .count()
        })
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
