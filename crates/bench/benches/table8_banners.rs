//! Table 8 + §7.1 — cookie-consent banner detection.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::consent;
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_websim::oracle::InspectionOracle;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let oracle = InspectionOracle::new(&f.world.sites);
    let verify = |domain: &str| oracle.confirm_banner(domain);
    let (breakdown, observations) = consent::breakdown(&f.porn, &verify);
    println!(
        "Table 8 (EU vantage): total {:.2}% of sites (paper 4.41%); no-option share {:.0}% (paper 32%)",
        breakdown.total_pct, breakdown.no_option_share_pct
    );
    for (kind, pct) in &breakdown.pct_by_type {
        println!("  {kind:<14} {pct:.2}%");
    }
    println!(
        "{} banners observed, {} rejected by manual verification",
        observations.len(),
        breakdown.rejected
    );

    c.bench_function("table8/banner_detection", |b| {
        b.iter(|| consent::breakdown(black_box(&f.porn), &verify))
    });
    // The DOM classifier on one page is the hot inner loop.
    if let Some(page) = f.porn.visits.iter().find(|v| !v.visit.dom_html.is_empty()) {
        c.bench_function("table8/classify_single_page", |b| {
            b.iter(|| consent::classify_page(black_box(&page.visit.dom_html)))
        });
    }
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
