//! Corpus-scale sweep: pipeline throughput and interned-string footprint
//! as the simulated world grows 1×/4×/16× (`--sites-scale` in bench form).
//!
//! For each factor the bench grows the tiny world multiplicatively (same
//! proportions, larger populations), runs collection plus the sharded
//! analysis layer (shard count = growth factor, so shard size stays
//! constant), and reports sites/second end to end together with the
//! interned bytes per recorded visit. The sweep lands in
//! `BENCH_scale.json` at the repo root; the columnar store earns its keep
//! only if sites/sec stays flat-ish and interned bytes grow at most
//! linearly with the corpus.
//!
//! ```sh
//! cargo bench -p redlight-bench --bench scale            # full sweep + JSON
//! cargo bench -p redlight-bench --bench scale -- --test  # 1× smoke, no JSON
//! ```

use std::time::Instant;

use redlight_core::stages::{self, AnalysisContext};
use redlight_core::{Study, StudyConfig};
use redlight_websim::World;

struct Row {
    factor: usize,
    sites: usize,
    visits: usize,
    wall_s: f64,
    sites_per_sec: f64,
    interned_bytes: usize,
    bytes_per_visit: f64,
}

fn sweep(factor: usize, reps: usize) -> Row {
    let mut config = StudyConfig::tiny(2019);
    config.world = config.world.scaled(factor);
    let world = World::build(config.world.clone());

    // The pipeline is deterministic, so every rep produces the same db and
    // results; only the wall time varies with scheduler noise. Best-of-N
    // (more reps for the cheap small scales) keeps the throughput ratio
    // honest on loaded machines.
    let mut best_wall = f64::INFINITY;
    let mut measured = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let (db, timings) = Study::collect_db(&world, &config);
        let ctx = AnalysisContext::build_sharded(&world, &config, &db, factor);
        let (outputs, _) = stages::run(&db, &ctx, &stages::all_stages());
        let wall_s = t0.elapsed().as_secs_f64();
        assert!(
            outputs.corpus_summary.is_some(),
            "analysis produced a corpus summary"
        );
        best_wall = best_wall.min(wall_s);
        measured = Some((db, timings));
    }
    let (db, timings) = measured.expect("at least one rep ran");

    let sites: usize = timings.iter().map(|t| t.sites).sum();
    let visits: usize = db.crawls().iter().map(|c| c.visits.len()).sum();
    let interned_bytes: usize = db.crawls().iter().map(|c| c.names().arena_bytes()).sum();
    Row {
        factor,
        sites,
        visits,
        wall_s: best_wall,
        sites_per_sec: sites as f64 / best_wall.max(1e-9),
        interned_bytes,
        bytes_per_visit: interned_bytes as f64 / visits.max(1) as f64,
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\"bench\":\"scale\",\"world\":\"tiny\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"scale\":{},\"sites\":{},\"visits\":{},\"wall_s\":{:.3},\
             \"sites_per_sec\":{:.1},\"interned_bytes\":{},\"interned_bytes_per_visit\":{:.1}}}",
            r.factor,
            r.sites,
            r.visits,
            r.wall_s,
            r.sites_per_sec,
            r.interned_bytes,
            r.bytes_per_visit
        ));
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let factors: &[usize] = if test_mode { &[1] } else { &[1, 4, 16] };

    if !test_mode {
        // One throwaway 1× run pays the process-warmup costs (allocator,
        // page cache) so the first measured scale isn't penalized.
        sweep(1, 1);
    }

    let mut rows = Vec::new();
    for &factor in factors {
        let row = sweep(factor, (16 / factor).clamp(1, 5));
        println!(
            "scale {:>2}x: {:>5} sites, {:>6} visits in {:>7.3}s — {:>8.1} sites/s, \
             {:>6.1} interned B/visit",
            row.factor, row.sites, row.visits, row.wall_s, row.sites_per_sec, row.bytes_per_visit
        );
        rows.push(row);
    }

    if test_mode {
        println!("scale: test mode, 1x smoke only, ok");
        return;
    }

    // Guardrails the sweep is meant to keep honest: throughput must not
    // collapse as the corpus grows, and interning must not go superlinear.
    let base = &rows[0];
    let top = rows.last().expect("at least one row");
    assert!(
        top.sites_per_sec >= 0.8 * base.sites_per_sec,
        "throughput collapsed: {:.1} sites/s at {}x vs {:.1} at 1x",
        top.sites_per_sec,
        top.factor,
        base.sites_per_sec
    );
    assert!(
        top.bytes_per_visit <= 1.5 * base.bytes_per_visit.max(1.0),
        "interned bytes grew superlinearly: {:.1} B/visit at {}x vs {:.1} at 1x",
        top.bytes_per_visit,
        top.factor,
        base.bytes_per_visit
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json(&rows)).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
