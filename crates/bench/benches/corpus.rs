//! §3 — semi-supervised corpus compilation.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_bench::criterion as bench_criterion;
use redlight_crawler::corpus::CorpusCompiler;
use redlight_websim::{World, WorldConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let world = World::build(WorldConfig::tiny(redlight_bench::BENCH_SEED));
    let report = CorpusCompiler::new(&world).compile();
    println!(
        "§3: {} + {} + {} sources → {} candidates → -{} false positives → {} sanitized \
         (paper: 342 + 22 + 7,735 → 8,099 → -1,256 → 6,843)",
        report.from_directories.len(),
        report.from_adult_category.len(),
        report.from_keywords.len(),
        report.candidates.len(),
        report.false_positives.len(),
        report.sanitized.len(),
    );
    println!("manual inspections: {}", report.manual_inspections);

    c.bench_function("corpus/compile", |b| {
        b.iter(|| CorpusCompiler::new(black_box(&world)).compile())
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
