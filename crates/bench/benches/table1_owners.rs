//! Table 1 + §4.1 — publisher-cluster discovery.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::{owners, policies};
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_crawler::selenium::SeleniumCrawler;
use redlight_net::geoip::Country;
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let interactions = SeleniumCrawler::new(&f.world, Country::Spain).crawl(&f.corpus.sanitized);
    let (docs, _) = policies::collect(&interactions);
    let histories: BTreeMap<_, _> = f.world.rank_histories().into_iter().collect();

    let report = owners::discover(
        &docs,
        &f.porn,
        &f.world.whois,
        &histories,
        f.corpus.sanitized.len(),
    );
    println!(
        "Table 1: {} companies owning {} sites; {:.1}% of the corpus unattributable \
         (paper: 24 / 286 / 96%); {} template clusters discarded",
        report.companies,
        report.attributed_sites,
        report.unattributed_pct,
        report.template_clusters_discarded,
    );
    for cluster in report.clusters.iter().take(8) {
        println!(
            "  {:<24} {:>2} sites  flagship {:?}",
            cluster.company,
            cluster.sites.len(),
            cluster.most_popular
        );
    }

    c.bench_function("table1/owner_discovery", |b| {
        b.iter(|| {
            owners::discover(
                black_box(&docs),
                black_box(&f.porn),
                &f.world.whois,
                &histories,
                f.corpus.sanitized.len(),
            )
        })
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
