//! Timeline-sampling overhead: the traffic workload with and without the
//! windowed telemetry recorder, at the million-session scale.
//!
//! Each scale runs [`run_traffic`] twice — bare kernel vs. kernel with a
//! 1-second timeline (tick hook, window sampling, SLO tracking, flight
//! ring) — taking the best of two runs per arm to damp scheduler noise,
//! and reports both arms' events-per-wall-second plus the overhead
//! percentage. The acceptance target is ≤ 10% overhead at the top scale.
//! A same-seed re-run pins determinism: the timeline's JSON-lines export
//! must be byte-identical. Results land in `BENCH_timeline.json`.
//!
//! ```sh
//! cargo bench -p redlight-bench --bench timeline            # full scale + JSON
//! cargo bench -p redlight-bench --bench timeline -- --test  # small smoke (still writes JSON)
//! ```

use redlight_obs::ObsContext;
use redlight_sim::{run_traffic, TimelineSpec, TrafficConfig, TrafficReport};
use redlight_websim::WorldConfig;

fn config(sessions: u64, timeline: bool) -> TrafficConfig {
    TrafficConfig {
        world: WorldConfig::tiny(2019),
        timeline: timeline.then(TimelineSpec::default),
        ..TrafficConfig::new(sessions)
    }
}

/// Best-of-`runs` kernel wall time for one arm (fastest run is the least
/// noisy estimate of the arm's cost).
fn best_of(sessions: u64, timeline: bool, runs: usize) -> TrafficReport {
    (0..runs)
        .map(|_| run_traffic(&config(sessions, timeline), &ObsContext::new()))
        .min_by(|a, b| a.wall.cmp(&b.wall))
        .expect("at least one run")
}

struct Row {
    sessions: u64,
    base: TrafficReport,
    timed: TrafficReport,
}

impl Row {
    fn base_rate(&self) -> f64 {
        self.base.events as f64 / self.base.wall.as_secs_f64().max(1e-9)
    }

    fn timeline_rate(&self) -> f64 {
        self.timed.events as f64 / self.timed.wall.as_secs_f64().max(1e-9)
    }

    fn overhead_pct(&self) -> f64 {
        (self.base_rate() / self.timeline_rate().max(1e-9) - 1.0) * 100.0
    }
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\"bench\":\"timeline\",\"world\":\"tiny\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tl = r.timed.timeline.as_ref().expect("timeline arm records one");
        out.push_str(&format!(
            "{{\"sessions\":{},\"events\":{},\"windows\":{},\"slo_events\":{},\
             \"flight_freezes\":{},\"base_events_per_sec\":{:.0},\
             \"timeline_events_per_sec\":{:.0},\"overhead_pct\":{:.2}}}",
            r.sessions,
            r.timed.events,
            tl.timeline.windows().len(),
            tl.slo_events.len(),
            tl.flight_freezes,
            r.base_rate(),
            r.timeline_rate(),
            r.overhead_pct(),
        ));
    }
    out.push_str("]}\n");
    out
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let scales: &[u64] = if test_mode { &[5_000] } else { &[1_000_000] };
    let runs = 2;

    // Determinism pin: same seed ⇒ byte-identical timeline exports, and
    // the kernel must deliver exactly as many events with the hook as
    // without it (sampling reads, never schedules).
    let pin = run_traffic(&config(scales[0].min(5_000), true), &ObsContext::new());
    let pin2 = run_traffic(&config(scales[0].min(5_000), true), &ObsContext::new());
    let (a, b) = (
        pin.timeline.as_ref().expect("timeline on"),
        pin2.timeline.as_ref().expect("timeline on"),
    );
    assert_eq!(
        a.json_lines(),
        b.json_lines(),
        "same-seed timelines must export byte-identically"
    );
    assert_eq!(a.csv(), b.csv());
    let bare = run_traffic(&config(scales[0].min(5_000), false), &ObsContext::new());
    assert_eq!(
        bare.events, pin.events,
        "the tick hook must not change the event schedule"
    );

    let mut rows = Vec::new();
    for &sessions in scales {
        let base = best_of(sessions, false, runs);
        let timed = best_of(sessions, true, runs);
        let row = Row {
            sessions,
            base,
            timed,
        };
        println!(
            "{:>9} sessions: bare {:>10.0} ev/s, timeline {:>10.0} ev/s \
             ({:>+5.2}% overhead, {} windows)",
            row.sessions,
            row.base_rate(),
            row.timeline_rate(),
            row.overhead_pct(),
            row.timed
                .timeline
                .as_ref()
                .map(|t| t.timeline.windows().len())
                .unwrap_or(0),
        );
        if !test_mode {
            assert!(
                row.overhead_pct() <= 10.0,
                "timeline sampling overhead {:.2}% exceeds the 10% budget at {} sessions",
                row.overhead_pct(),
                row.sessions
            );
        }
        rows.push(row);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timeline.json");
    std::fs::write(path, json(&rows)).expect("write BENCH_timeline.json");
    println!("wrote {path}");
}
