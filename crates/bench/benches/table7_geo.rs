//! Table 7 + §6 — per-country comparison (crawl in fixture, summarize in
//! bench).

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::ats::AtsVerdicts;
use redlight_analysis::{geo, ThreatFeed};
use redlight_bench::{criterion as bench_criterion, Fixture};
use redlight_crawler::db::CorpusLabel;
use redlight_crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight_net::geoip::Country;
use std::hint::black_box;

struct Feed<'w>(&'w redlight_websim::World);
impl ThreatFeed for Feed<'_> {
    fn detections(&self, domain: &str) -> u8 {
        self.0
            .scanners
            .detections(domain, self.0.truly_malicious(domain))
    }
}

fn bench(c: &mut Criterion) {
    let f = Fixture::tiny();
    let classifier = f.classifier();
    let threat = Feed(&f.world);
    let countries = [
        Country::Spain,
        Country::Usa,
        Country::Russia,
        Country::India,
    ];
    let crawls: Vec<_> = countries
        .iter()
        .map(|&country| {
            OpenWpmCrawler::new(
                &f.world,
                CrawlConfig {
                    country,
                    corpus: CorpusLabel::Porn,
                    store_dom: false,
                },
            )
            .crawl(&f.corpus.sanitized)
        })
        .collect();

    let summaries: Vec<_> = crawls
        .iter()
        .map(|crawl| geo::summarize(crawl, AtsVerdicts::new(&classifier), &threat))
        .collect();
    let regular_fqdns = redlight_analysis::thirdparty::extract(&f.regular, true).third_party_fqdns;
    let t7 = geo::table7(&summaries, &regular_fqdns);
    for row in &t7.rows {
        println!(
            "Table 7 {}: {} FQDNs ({:.0}% web-eco), {} unique, {} ATS ({} unique)",
            row.country.name(),
            row.fqdns,
            row.web_ecosystem_pct,
            row.unique_fqdns,
            row.ats,
            row.unique_ats
        );
    }
    let gm = geo::geo_malware(&summaries);
    println!(
        "malware: {:?} — stable domains {} (paper: 13), stable-site lower bound {} (paper: 26)",
        gm.per_country, gm.stable_domains, gm.stable_sites_lower_bound
    );

    c.bench_function("table7/geo_summarize", |b| {
        b.iter(|| {
            geo::summarize(
                black_box(&crawls[0]),
                AtsVerdicts::new(black_box(&classifier)),
                &threat,
            )
        })
    });
    c.bench_function("table7/country_comparison", |b| {
        b.iter(|| geo::table7(black_box(&summaries), black_box(&regular_fqdns)))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
