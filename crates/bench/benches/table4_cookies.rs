//! Table 4 + §5.1.1 — the HTTP-cookie pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use redlight_analysis::ats::AtsVerdicts;
use redlight_analysis::{cookies, thirdparty};
use redlight_bench::{criterion as bench_criterion, Fixture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = Fixture::small();
    let client_ip = f.porn.client_ip;
    let rows = cookies::collect(&f.porn);
    let stats = cookies::stats(&f.porn, &rows, client_ip);
    println!(
        "§5.1.1: {} cookies on {:.0}% of sites; {} ID cookies; {} third-party from {} domains ({:.0}% of sites)",
        stats.total_cookies,
        stats.sites_with_cookies_pct,
        stats.id_cookies,
        stats.third_party_id_cookies,
        stats.third_party_domains,
        stats.sites_with_third_party_pct,
    );
    println!(
        "encoded: {} IP cookies ({:.0}% top family), {} geo cookies via {:?} — paper: 2,183 (97%), 28",
        stats.ip_cookies, stats.ip_cookies_top_org_pct, stats.geo_cookies, stats.geo_cookie_domains
    );
    let regular_extract = thirdparty::extract(&f.regular, true);
    let classifier = f.classifier();
    for row in cookies::table4(
        &f.porn,
        &rows,
        AtsVerdicts::new(&classifier),
        &regular_extract.third_party_fqdns,
        client_ip,
        5,
    ) {
        println!(
            "  {:<18} {:>5.1}% of sites, {:>4} cookies, ip {:>5.1}%",
            row.domain, row.site_pct, row.cookies, row.ip_pct
        );
    }

    c.bench_function("table4/cookie_collection", |b| {
        b.iter(|| cookies::collect(black_box(&f.porn)))
    });
    c.bench_function("table4/cookie_stats", |b| {
        b.iter(|| cookies::stats(black_box(&f.porn), black_box(&rows), client_ip))
    });
}

criterion_group! { name = benches; config = bench_criterion(); targets = bench }
criterion_main!(benches);
