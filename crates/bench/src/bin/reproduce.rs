//! Regenerates every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release -p redlight-bench --bin reproduce            # small scale (~20× down)
//! cargo run --release -p redlight-bench --bin reproduce -- --paper # full paper scale
//! cargo run --release -p redlight-bench --bin reproduce -- --seed 7
//! cargo run --release -p redlight-bench --bin reproduce -- --timings
//! cargo run --release -p redlight-bench --bin reproduce -- --stage cookies --stage https
//! cargo run --release -p redlight-bench --bin reproduce -- --net-profile flaky --fault-seed 7
//! cargo run --release -p redlight-bench --bin reproduce -- --trace out.json --metrics out.prom
//! cargo run --release -p redlight-bench --bin reproduce -- --shards 4 --timings
//! cargo run --release -p redlight-bench --bin reproduce -- --sites-scale 4
//! cargo run --release -p redlight-bench --bin reproduce -- --no-batch-classify
//! cargo run --release -p redlight-bench --bin reproduce -- --traffic 1000000
//! ```
//!
//! Prints the rendered tables/figures followed by the paper-vs-measured
//! comparison table that EXPERIMENTS.md records. `--timings` appends the
//! pipeline instrumentation (per-crawl and per-stage wall times with record
//! counts, plus transport counters when the network profile meters);
//! `--timings --json` prints it as JSON instead of tables.
//! `--stage <name>` (repeatable) runs only the named analysis stages —
//! dependencies are pulled in automatically — and prints their one-line
//! summaries plus timings instead of the full report. `--net-profile <name>`
//! selects the network the crawls run over (`default`, `direct`, `flaky`,
//! `lossy`); `--fault-seed <n>` re-seeds the profile's fault injector so a
//! fixed seed replays the exact same network weather.
//!
//! `--shards <n>` fans the decomposable analysis stages over `n`
//! contiguous visit-range shards (map/reduce; results are byte-identical
//! to the monolithic run) and, with `--timings`, appends per-crawl shard
//! statistics. `--sites-scale <n>` grows every world population `n`× while
//! keeping the paper's proportions — the paper-vs-measured comparison
//! rescales accordingly. Both reject `0`.
//!
//! `--batch-classify` / `--no-batch-classify` toggle the batched ATS
//! classification pass (on by default): verdicts are byte-identical either
//! way, the toggle only exists to time the per-request baseline.
//!
//! Observability exports (any of these turns journaling on; same seed ⇒
//! byte-identical files):
//!
//! * `--trace <path>` — Chrome `trace_event` JSON, loadable in Perfetto.
//!   Deterministic counters and gauges additionally export as counter
//!   (`"C"`) tracks, and a `--traffic` timeline adds its windowed series
//!   as a second counter process.
//! * `--trace-events <path>` — the span journal as JSON lines.
//! * `--metrics <path>` — Prometheus-style text exposition of every counter.
//! * `--collect-only` — stop after the collection layer (no analysis);
//!   useful for fast smoke runs of the exporters.
//!
//! `--traffic <sessions>` runs the discrete-event traffic workload instead
//! of the study: `<sessions>` seeded visitor sessions walk the world's porn
//! sites on a simulated clock (service times, per-host connection limits,
//! FIFO queueing; faults and retries when the profile injects them),
//! reporting logical throughput and latency percentiles from the `obs`
//! histograms. The report is deterministic — same seed ⇒ byte-identical —
//! with real wall time on stderr only. Honors `--seed`, `--net-profile`,
//! `--fault-seed`, `--sites-scale`; `--timings` appends the per-tier
//! "Traffic layer" table; the export flags write the traffic journal.
//!
//! Timeline telemetry (`--traffic` only):
//!
//! * `--timeline <path>` — record windowed metric series over logical time
//!   and write them as JSON lines to `<path>` plus a plot-ready CSV
//!   sibling (`<path>` with its extension swapped for `.csv`). The file
//!   also carries SLO transition lines and a flight-recorder summary.
//! * `--timeline-window <ms>` — window width in logical milliseconds
//!   (default 1000).
//! * `--timings` — additionally prints the timeline sparkline summary
//!   (and enables sampling even without `--timeline`).

use redlight_core::results::StageReport;
use redlight_core::{stages, Study, StudyConfig, StudyResults};
use redlight_net::transport::{NetProfile, SimSpec};
use redlight_obs::{ObsContext, Timeline};
use redlight_report::paper::{self, Comparison};
use redlight_sim::{run_traffic, TimelineSpec, TrafficConfig};
use redlight_websim::World;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let timings = args.iter().any(|a| a == "--timings");
    let json = args.iter().any(|a| a == "--json");
    let collect_only = args.iter().any(|a| a == "--collect-only");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2019u64);
    let requested: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--stage")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let net_profile = args
        .iter()
        .position(|a| a == "--net-profile")
        .and_then(|i| args.get(i + 1));
    let fault_seed: Option<u64> = args
        .iter()
        .position(|a| a == "--fault-seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let path_arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let trace_out = path_arg("--trace");
    let events_out = path_arg("--trace-events");
    let metrics_out = path_arg("--metrics");
    let timeline_out = path_arg("--timeline");
    // Window width in logical milliseconds; absent ⇒ 1 s windows.
    let timeline_window_ms: u64 = match args.iter().position(|a| a == "--timeline-window") {
        None => 1_000,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("--timeline-window expects a positive millisecond count");
                std::process::exit(2);
            }
        },
    };
    // Positive-count flags: absent ⇒ 1, `0` or unparsable ⇒ usage error.
    let count_arg = |flag: &str| -> usize {
        match args.iter().position(|a| a == flag) {
            None => 1,
            Some(i) => match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => n,
                _ => {
                    eprintln!("{flag} expects a positive integer");
                    std::process::exit(2);
                }
            },
        }
    };
    let shards = count_arg("--shards");
    let sites_scale = count_arg("--sites-scale");
    // `--traffic <sessions>`: absent ⇒ study mode; `0` ⇒ usage error.
    let traffic: Option<u64> = match args.iter().position(|a| a == "--traffic") {
        None => None,
        Some(i) => match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
            Some(n) if n > 0 => Some(n),
            _ => {
                eprintln!("--traffic expects a positive session count");
                std::process::exit(2);
            }
        },
    };
    // Last occurrence wins so scripts can append an override.
    let batch_classify = args
        .iter()
        .rev()
        .find_map(|a| match a.as_str() {
            "--batch-classify" => Some(true),
            "--no-batch-classify" => Some(false),
            _ => None,
        })
        .unwrap_or(true);

    let mut config = if paper_scale {
        StudyConfig::paper_scale(seed)
    } else {
        StudyConfig::small(seed)
    };
    if let Some(name) = net_profile {
        config.net = match NetProfile::named(name) {
            Some(profile) => profile,
            None => {
                eprintln!(
                    "unknown net profile {name:?}; known profiles: {}",
                    NetProfile::NAMES.join(", ")
                );
                std::process::exit(2);
            }
        };
    }
    if let Some(fault_seed) = fault_seed {
        config.net = config.net.with_fault_seed(fault_seed);
    }
    config.batch_classify = batch_classify;
    config.world = config.world.scaled(sites_scale);
    // Counts grow with the corpus, so the paper comparison divides the
    // base world-size factor by the multiplicative growth.
    let scale = if paper_scale { 1.0 } else { 20.0 } / sites_scale as f64;

    // Journaling is opt-in: without an export flag the study runs over the
    // disabled (zero-overhead) observability context.
    let obs = if trace_out.is_some() || events_out.is_some() || metrics_out.is_some() {
        ObsContext::new()
    } else {
        ObsContext::disabled()
    };

    if let Some(sessions) = traffic {
        run_traffic_mode(
            sessions,
            seed,
            &config,
            timings,
            &trace_out,
            &events_out,
            &metrics_out,
            &timeline_out,
            timeline_window_ms,
        );
        return;
    }
    if timeline_out.is_some() {
        eprintln!("--timeline requires --traffic <sessions>");
        std::process::exit(2);
    }

    eprintln!(
        "running the {} study (seed {seed})…",
        if paper_scale {
            "PAPER-SCALE"
        } else {
            "small-scale (1/20)"
        }
    );
    let t0 = std::time::Instant::now();

    if collect_only {
        let world = World::build(config.world.clone());
        let (db, crawl_timings) = Study::collect_db_observed(&world, &config, &obs);
        eprintln!(
            "collected {} crawls, {} interaction records in {:?}",
            db.crawls().len(),
            db.interactions().len(),
            t0.elapsed()
        );
        if timings {
            let report = StageReport {
                crawls: crawl_timings,
                stages: Vec::new(),
                caches: Vec::new(),
                shards: shard_stats(&db, shards),
            };
            print_timings(&report, json);
        }
        export_obs(&obs, &trace_out, &events_out, &metrics_out);
        return;
    }

    if !requested.is_empty() {
        run_stages(&config, &requested, timings, json, &obs, shards);
        eprintln!("done in {:?}", t0.elapsed());
        export_obs(&obs, &trace_out, &events_out, &metrics_out);
        return;
    }

    let world = World::build(config.world.clone());
    let results = Study::run_on_sharded_observed(&world, &config, &obs, shards);
    eprintln!("done in {:?}", t0.elapsed());

    println!("{}", results.render_summary());
    println!(
        "{}",
        paper::render_comparisons("Paper vs measured", &comparisons(&results, scale))
    );
    if timings {
        print_timings(&results.stage_report, json);
    }
    export_obs(&obs, &trace_out, &events_out, &metrics_out);
}

/// `--traffic` mode: the discrete-event traffic workload instead of the
/// study. Always runs over an enabled observability context — the report's
/// percentiles come from the registry histograms — but everything printed
/// to stdout is logical, so same seed ⇒ byte-identical output.
#[allow(clippy::too_many_arguments)]
fn run_traffic_mode(
    sessions: u64,
    seed: u64,
    config: &StudyConfig,
    timings: bool,
    trace_out: &Option<String>,
    events_out: &Option<String>,
    metrics_out: &Option<String>,
    timeline_out: &Option<String>,
    timeline_window_ms: u64,
) {
    let net = if config.net.sim.is_some() {
        config.net.clone()
    } else {
        // The workload is meaningless without a service model; default one
        // in while keeping the profile's faults/retries/seed.
        config.net.clone().with_sim(SimSpec::default())
    };
    // Timeline sampling rides along whenever something will consume it: a
    // `--timeline` file or the `--timings` sparkline summary.
    let timeline_spec = (timeline_out.is_some() || timings)
        .then(|| TimelineSpec::with_window(std::time::Duration::from_millis(timeline_window_ms)));
    let traffic_config = TrafficConfig {
        sessions,
        seed,
        world: config.world.clone(),
        net,
        timeline: timeline_spec,
        ..TrafficConfig::new(sessions)
    };
    eprintln!("simulating {sessions} visitor sessions (seed {seed})…");
    let obs = ObsContext::new();
    let report = run_traffic(&traffic_config, &obs);
    eprintln!(
        "delivered {} kernel events in {:?} (wall)",
        report.events, report.wall
    );
    print!("{}", report.render());
    if timings {
        println!("\n{}", report.render_table());
        if let Some(tl) = &report.timeline {
            println!("\n{}", tl.render());
        }
    }
    if let (Some(path), Some(tl)) = (timeline_out, &report.timeline) {
        write_or_die(path, &tl.json_lines());
        let csv_path = match path.rsplit_once('.') {
            Some((stem, _)) => format!("{stem}.csv"),
            None => format!("{path}.csv"),
        };
        write_or_die(&csv_path, &tl.csv());
        eprintln!(
            "wrote timeline ({} windows) to {path} + {csv_path}",
            tl.timeline.windows().len()
        );
    }
    export_obs_with(
        &obs,
        trace_out,
        events_out,
        metrics_out,
        report.timeline.as_ref().map(|tl| &tl.timeline),
    );
}

/// Per-crawl shard statistics — only surfaced on sharded runs.
fn shard_stats(
    db: &redlight_crawler::db::MeasurementDb,
    shards: usize,
) -> Vec<redlight_core::results::ShardStat> {
    if shards > 1 {
        stages::shard_stats(db, shards)
    } else {
        Vec::new()
    }
}

/// `--stage` mode: collect the DB once, run only the selected stages.
fn run_stages(
    config: &StudyConfig,
    requested: &[String],
    timings: bool,
    json: bool,
    obs: &ObsContext,
    shards: usize,
) {
    let selected = match stages::expand_selection(requested) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "stages: {}",
        selected.iter().copied().collect::<Vec<_>>().join(", ")
    );

    let world = World::build(config.world.clone());
    let (db, crawl_timings) = Study::collect_db_observed(&world, config, obs);
    let ctx = stages::AnalysisContext::build_sharded_in(&world, config, &db, &obs.metrics, shards);
    let stage_obs = stages::StageObs {
        trace: &obs.trace,
        metrics: &obs.metrics,
        parent: None,
    };
    let (outputs, stage_timings) = stages::run_observed(&db, &ctx, &selected, &stage_obs);

    for (name, line) in outputs.summaries() {
        println!("{name:<16} {line}");
    }
    if timings {
        let report = StageReport {
            crawls: crawl_timings,
            stages: stage_timings,
            caches: ctx.cache_counters(),
            shards: shard_stats(&db, shards),
        };
        print_timings(&report, json);
    }
}

/// Prints the timing report, as tables or (`--json`) as JSON.
fn print_timings(report: &StageReport, json: bool) {
    if json {
        println!("{}", report.to_json());
    } else {
        println!("\n{}", report.render());
    }
}

/// Writes whichever observability exports were requested.
fn export_obs(
    obs: &ObsContext,
    trace: &Option<String>,
    events: &Option<String>,
    metrics: &Option<String>,
) {
    export_obs_with(obs, trace, events, metrics, None);
}

/// [`export_obs`] plus an optional traffic timeline: the Chrome trace then
/// carries counter ("C") tracks for the deterministic registry metrics and
/// the timeline's windowed series.
fn export_obs_with(
    obs: &ObsContext,
    trace: &Option<String>,
    events: &Option<String>,
    metrics: &Option<String>,
    timeline: Option<&Timeline>,
) {
    if !obs.is_enabled() {
        return;
    }
    let journal = obs.trace.journal();
    if let Some(path) = trace {
        let counters = obs.metrics.snapshot();
        write_or_die(path, &journal.chrome_trace_with(Some(&counters), timeline));
        eprintln!(
            "wrote Chrome trace ({} spans) to {path} — load it at ui.perfetto.dev",
            journal.len()
        );
    }
    if let Some(path) = events {
        write_or_die(path, &journal.json_lines());
        eprintln!("wrote span journal ({} events) to {path}", journal.len());
    }
    if let Some(path) = metrics {
        let text = obs.metrics.snapshot().prometheus();
        write_or_die(path, &text);
        eprintln!("wrote metrics exposition to {path}");
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Builds every registered comparison. Count-type metrics are rescaled by
/// the world-size factor; percentages are scale-free.
pub fn comparisons(r: &StudyResults, scale: f64) -> Vec<Comparison> {
    let org = |name: &str| {
        r.fig3_porn
            .iter()
            .find(|o| o.organization == name)
            .map(|o| o.fraction * 100.0)
            .unwrap_or(0.0)
    };
    let t4 = |domain: &str| {
        r.table4
            .iter()
            .find(|row| row.domain == domain)
            .map(|row| (row.site_pct, row.ip_pct))
            .unwrap_or((0.0, 0.0))
    };
    let (exosrv_pct, exosrv_ip) = t4("exosrv.com");
    let (exoclick_pct, exoclick_ip) = t4("exoclick.com");
    let (addthis_pct, _) = t4("addthis.com");
    let exo_union = org("ExoClick");
    let russia = r
        .table7
        .rows
        .iter()
        .find(|row| row.country == redlight_net::geoip::Country::Russia);
    let spain = r
        .table7
        .rows
        .iter()
        .find(|row| row.country == redlight_net::geoip::Country::Spain);
    let west_gate = r
        .agegates
        .per_country
        .iter()
        .find(|c| c.country == redlight_net::geoip::Country::Spain)
        .map(|c| c.with_gate_pct)
        .unwrap_or(0.0);
    let ru_gate = r
        .agegates
        .per_country
        .iter()
        .find(|c| c.country == redlight_net::geoip::Country::Russia)
        .map(|c| c.with_gate_pct)
        .unwrap_or(0.0);

    vec![
        // §3 corpus (counts scale with the world).
        paper::compare("corpus.candidates", r.corpus.candidates as f64 * scale),
        paper::compare(
            "corpus.false_positives",
            r.corpus.false_positives as f64 * scale,
        ),
        paper::compare("corpus.sanitized", r.corpus.sanitized as f64 * scale),
        paper::compare(
            "corpus.regular_reference",
            r.corpus.regular_reference as f64 * scale,
        ),
        // Fig. 1.
        paper::compare("fig1.always_top1m_pct", r.fig1.always_top1m_pct),
        paper::compare("fig1.always_top1k", r.fig1.always_top1k as f64 * scale),
        // §4.1.
        paper::compare("owners.companies", r.ownership.companies as f64),
        paper::compare(
            "owners.attributed_sites",
            r.ownership.attributed_sites as f64 * scale,
        ),
        paper::compare("owners.unattributed_pct", r.ownership.unattributed_pct),
        paper::compare(
            "monetization.subscription_pct",
            r.monetization.with_subscription_pct,
        ),
        paper::compare("monetization.paid_pct", r.monetization.paid_pct),
        // Table 2.
        paper::compare(
            "table2.porn_crawled",
            r.table2.porn_corpus_size as f64 * scale,
        ),
        paper::compare(
            "table2.regular_crawled",
            r.table2.regular_corpus_size as f64 * scale,
        ),
        paper::compare(
            "table2.porn_third_party",
            r.table2.porn_third_party as f64 * scale,
        ),
        paper::compare(
            "table2.regular_third_party",
            r.table2.regular_third_party as f64 * scale,
        ),
        paper::compare("table2.porn_ats", r.table2.porn_ats as f64 * scale),
        paper::compare("table2.regular_ats", r.table2.regular_ats as f64 * scale),
        paper::compare(
            "table2.ats_intersection",
            r.table2.ats_intersection as f64 * scale,
        ),
        // §4.2(3) / Fig. 3.
        paper::compare(
            "orgs.resolved_pct",
            100.0 * r.attribution.resolved_fqdns as f64 / r.attribution.total_fqdns.max(1) as f64,
        ),
        paper::compare("orgs.companies", r.attribution.companies as f64 * scale),
        paper::compare("fig3.alphabet_pct", org("Alphabet")),
        paper::compare("fig3.exoclick_pct", exo_union),
        paper::compare("fig3.cloudflare_pct", org("Cloudflare")),
        // §5.1.1 / Table 4.
        paper::compare("cookies.total", r.cookie_stats.total_cookies as f64 * scale),
        paper::compare("cookies.sites_pct", r.cookie_stats.sites_with_cookies_pct),
        paper::compare(
            "cookies.id_cookies",
            r.cookie_stats.id_cookies as f64 * scale,
        ),
        paper::compare(
            "cookies.third_party_id",
            r.cookie_stats.third_party_id_cookies as f64 * scale,
        ),
        paper::compare(
            "cookies.third_party_domains",
            r.cookie_stats.third_party_domains as f64 * scale,
        ),
        paper::compare(
            "cookies.third_party_sites_pct",
            r.cookie_stats.sites_with_third_party_pct,
        ),
        paper::compare(
            "cookies.ip_cookies",
            r.cookie_stats.ip_cookies as f64 * scale,
        ),
        paper::compare(
            "cookies.ip_top_org_pct",
            r.cookie_stats.ip_cookies_top_org_pct,
        ),
        paper::compare(
            "cookies.geo_cookies",
            r.cookie_stats.geo_cookies as f64 * scale,
        ),
        paper::compare(
            "cookies.top100_site_pct",
            r.cookie_stats.top100_cookie_site_pct,
        ),
        paper::compare("table4.exosrv_pct", exosrv_pct),
        paper::compare("table4.exosrv_ip_pct", exosrv_ip),
        paper::compare("table4.exoclick_pct", exoclick_pct),
        paper::compare("table4.exoclick_ip_pct", exoclick_ip),
        paper::compare("table4.addthis_pct", addthis_pct),
        // §5.1.2.
        paper::compare("sync.sites", r.sync.sites_with_sync as f64 * scale),
        paper::compare("sync.pairs", r.sync.pairs.len() as f64 * scale),
        paper::compare("sync.origins", r.sync.origins as f64 * scale),
        paper::compare("sync.destinations", r.sync.destinations as f64 * scale),
        paper::compare("sync.top100_pct", r.sync.top_sites_with_sync_pct),
        // §5.1.3 / §5.1.4.
        paper::compare(
            "fp.canvas_scripts",
            r.fingerprint.canvas_scripts.len() as f64 * scale,
        ),
        paper::compare(
            "fp.canvas_sites",
            r.fingerprint.canvas_sites.len() as f64 * scale,
        ),
        paper::compare(
            "fp.canvas_services",
            r.fingerprint.canvas_services.len() as f64,
        ),
        paper::compare(
            "fp.third_party_script_pct",
            r.fingerprint.third_party_script_pct,
        ),
        paper::compare("fp.unindexed_pct", r.fingerprint.unindexed_pct),
        paper::compare("fp.font_scripts", r.fingerprint.font_scripts.len() as f64),
        paper::compare("webrtc.scripts", r.webrtc.scripts.len() as f64 * scale),
        paper::compare("webrtc.sites", r.webrtc.sites.len() as f64 * scale),
        paper::compare("webrtc.services", r.webrtc.services.len() as f64),
        paper::compare("webrtc.ats_services", r.webrtc.ats_services.len() as f64),
        // §5.2 / Table 6.
        paper::compare("table6.top1k_sites_pct", r.https.rows[0].sites_https_pct),
        paper::compare("table6.to10k_sites_pct", r.https.rows[1].sites_https_pct),
        paper::compare("table6.to100k_sites_pct", r.https.rows[2].sites_https_pct),
        paper::compare("table6.beyond_sites_pct", r.https.rows[3].sites_https_pct),
        paper::compare("https.not_fully_pct", r.https.not_fully_https_pct),
        // §5.3.
        paper::compare(
            "malware.flagged_sites",
            r.malware.flagged_sites.len() as f64 * scale,
        ),
        paper::compare(
            "malware.flagged_services",
            r.malware.flagged_services.len() as f64,
        ),
        paper::compare(
            "malware.sites_with_flagged",
            r.malware.sites_with_flagged_services as f64 * scale,
        ),
        paper::compare(
            "malware.mining_sites",
            r.malware.mining_sites.len() as f64 * scale,
        ),
        paper::compare(
            "malware.mining_services",
            r.malware.mining_services.len() as f64,
        ),
        // §6 / Table 7.
        paper::compare(
            "table7.spain_fqdns",
            spain.map(|row| row.fqdns as f64 * scale).unwrap_or(0.0),
        ),
        paper::compare(
            "table7.russia_fqdns",
            russia.map(|row| row.fqdns as f64 * scale).unwrap_or(0.0),
        ),
        paper::compare(
            "table7.russia_unique_ats",
            russia
                .map(|row| row.unique_ats as f64 * scale)
                .unwrap_or(0.0),
        ),
        paper::compare("table7.total_ats", r.table7.total_ats as f64 * scale),
        // §7.1 / Table 8.
        paper::compare("table8.eu_total_pct", r.banners_eu.total_pct),
        paper::compare("table8.usa_total_pct", r.banners_usa.total_pct),
        paper::compare(
            "table8.no_option_share_pct",
            r.banners_eu.no_option_share_pct,
        ),
        // §7.2.
        paper::compare("agegate.west_pct", west_gate),
        paper::compare("agegate.russia_pct", ru_gate),
        paper::compare("agegate.russia_only_pct", r.agegates.russia_only_pct),
        paper::compare("agegate.not_in_russia_pct", r.agegates.not_in_russia_pct),
        // §7.3.
        paper::compare("policies.with_policy_pct", r.policies.with_policy_pct),
        paper::compare("policies.gdpr_pct", r.policies.gdpr_pct),
        paper::compare("policies.mean_letters", r.policies.mean_letters),
        paper::compare("policies.similar_pairs_pct", r.policies.similar_pairs_pct),
    ]
}
