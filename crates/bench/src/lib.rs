//! Shared fixtures for the per-table/figure benchmarks.
//!
//! Every bench follows the same pattern: build the fixture once (world +
//! crawls — the expensive, non-benchmarked part), **print the regenerated
//! table/figure** so `cargo bench` output doubles as the reproduction
//! record, then let Criterion time the analysis step itself.

use redlight_analysis::ats::AtsClassifier;
use redlight_crawler::corpus::{CorpusCompiler, CorpusReport};
use redlight_crawler::db::{CorpusLabel, CrawlRecord};
use redlight_crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight_net::geoip::Country;
use redlight_websim::{World, WorldConfig};

/// Seed shared by all benches so their outputs cross-reference.
pub const BENCH_SEED: u64 = 2019;

/// A world with compiled corpus and the two main Spanish crawls.
pub struct Fixture {
    pub world: World,
    pub corpus: CorpusReport,
    pub porn: CrawlRecord,
    pub regular: CrawlRecord,
}

impl Fixture {
    /// Builds the standard small-scale fixture (~340 porn sites).
    pub fn small() -> Fixture {
        Self::with_config(WorldConfig::small(BENCH_SEED))
    }

    /// Builds the tiny fixture for crawl-heavy benches.
    pub fn tiny() -> Fixture {
        Self::with_config(WorldConfig::tiny(BENCH_SEED))
    }

    fn with_config(config: WorldConfig) -> Fixture {
        let world = World::build(config);
        let corpus = CorpusCompiler::new(&world).compile();
        let porn = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Porn,
                store_dom: true,
            },
        )
        .crawl(&corpus.sanitized);
        let regular = OpenWpmCrawler::new(
            &world,
            CrawlConfig {
                country: Country::Spain,
                corpus: CorpusLabel::Regular,
                store_dom: false,
            },
        )
        .crawl(&corpus.reference_regular);
        Fixture {
            world,
            corpus,
            porn,
            regular,
        }
    }

    /// The blocklist classifier for this world.
    pub fn classifier(&self) -> AtsClassifier {
        AtsClassifier::from_lists(&self.world.easylist, &self.world.easyprivacy)
    }

    /// Porn domains sorted by best 2018 rank.
    pub fn ranked_domains(&self) -> Vec<String> {
        let histories = self.world.rank_histories();
        let mut ranked = self.corpus.sanitized.clone();
        ranked.sort_by_key(|d| histories.get(d).and_then(|h| h.best()).unwrap_or(u32::MAX));
        ranked
    }
}

/// Criterion defaults tuned for heavyweight end-to-end benches.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}
