//! Lightweight tokenizers shared by the TF-IDF model and the keyword
//! detectors.

/// Splits `text` into lowercase word tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else
/// (punctuation, whitespace, markup leftovers) is a separator. Tokens shorter
/// than two characters are dropped, matching what the study's policy
/// similarity computation needs (single letters carry no signal).
pub fn words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            if cur.chars().count() >= 2 {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.chars().count() >= 2 {
        out.push(cur);
    }
    out
}

/// Counts the number of letters (alphabetic characters) in `text`.
///
/// The paper reports privacy-policy lengths in letters (§7.3: shortest 1,088,
/// longest 243,649, mean 17,159), so the analysis needs the same measure.
pub fn letter_count(text: &str) -> usize {
    text.chars().filter(|c| c.is_alphabetic()).count()
}

/// Returns `true` when `haystack` contains `needle` case-insensitively.
///
/// Both strings are lowercased with full Unicode case folding before the
/// substring scan; used by all keyword detectors (consent buttons, policy
/// links, subscription signals).
pub fn contains_ci(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack.to_lowercase().contains(&needle.to_lowercase())
}

/// Counts distinct characters in `text` (used by the canvas-fingerprinting
/// heuristic: scripts drawing text with more than 10 distinct characters).
pub fn distinct_chars(text: &str) -> usize {
    let mut seen: Vec<char> = text.chars().collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        assert_eq!(
            words("We value your Privacy! Take some cookies."),
            vec!["we", "value", "your", "privacy", "take", "some", "cookies"]
        );
    }

    #[test]
    fn drops_single_char_tokens() {
        assert_eq!(words("a b cd"), vec!["cd"]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(words("").is_empty());
        assert!(words("!!! ???").is_empty());
    }

    #[test]
    fn letter_count_ignores_digits_and_punct() {
        assert_eq!(letter_count("abc 123 d.e"), 5);
    }

    #[test]
    fn contains_ci_works_across_case() {
        assert!(contains_ci("PRIVACY Policy", "privacy"));
        assert!(contains_ci("política de privacidad", "Privacidad"));
        assert!(!contains_ci("terms of service", "privacy"));
        assert!(contains_ci("anything", ""));
    }

    #[test]
    fn distinct_chars_counts_unique() {
        assert_eq!(distinct_chars("aabbcc"), 3);
        assert_eq!(distinct_chars(""), 0);
        // 26 distinct letters (the pangram) plus the space character.
        assert_eq!(distinct_chars("Cwm fjordbank glyphs vext quiz"), 27);
    }
}
