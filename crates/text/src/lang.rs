//! Eight-language keyword dictionaries.
//!
//! The Selenium-style crawler (paper §3.1) searches landing pages for the
//! words “Yes”, “Enter”, “Agree”, “Continue” and “Accept” in eight languages
//! — English, Spanish, French, Portuguese, Russian, Italian, German and
//! Romanian, the most common default languages in the corpus — and for
//! “Privacy”/“Policy” links in the same languages. The monetization analysis
//! (§4.1) additionally searches for account-creation and premium keywords.

use serde::{Deserialize, Serialize};

/// The eight languages covered by the study's keyword matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    /// English.
    English,
    /// Spanish.
    Spanish,
    /// French.
    French,
    /// Portuguese.
    Portuguese,
    /// Russian.
    Russian,
    /// Italian.
    Italian,
    /// German.
    German,
    /// Romanian.
    Romanian,
}

impl Language {
    /// All eight languages, in a stable order.
    pub const ALL: [Language; 8] = [
        Language::English,
        Language::Spanish,
        Language::French,
        Language::Portuguese,
        Language::Russian,
        Language::Italian,
        Language::German,
        Language::Romanian,
    ];

    /// ISO-639-1 code.
    pub fn code(self) -> &'static str {
        match self {
            Language::English => "en",
            Language::Spanish => "es",
            Language::French => "fr",
            Language::Portuguese => "pt",
            Language::Russian => "ru",
            Language::Italian => "it",
            Language::German => "de",
            Language::Romanian => "ro",
        }
    }

    /// Parses an ISO-639-1 code.
    pub fn from_code(code: &str) -> Option<Language> {
        Language::ALL.into_iter().find(|l| l.code() == code)
    }
}

/// Per-language keyword pack.
#[derive(Debug, Clone)]
pub struct LanguagePack {
    /// Language.
    pub language: Language,
    /// Affirmative button labels: “Yes”, “Enter”, “Agree”, “Continue”, “Accept”.
    pub affirmative: &'static [&'static str],
    /// Privacy-policy link keywords (“Privacy”, “Policy”).
    pub privacy: &'static [&'static str],
    /// Cookie-banner vocabulary (“cookie(s)”, “consent”, …).
    pub cookie: &'static [&'static str],
    /// Account-creation keywords (“Log In”, “Sign Up”).
    pub account: &'static [&'static str],
    /// Premium/subscription keywords.
    pub premium: &'static [&'static str],
    /// Adult-content warning vocabulary (“18”, “adult”, “age”).
    pub age_warning: &'static [&'static str],
}

/// Returns the keyword pack for `language`.
pub fn pack(language: Language) -> &'static LanguagePack {
    match language {
        Language::English => &EN,
        Language::Spanish => &ES,
        Language::French => &FR,
        Language::Portuguese => &PT,
        Language::Russian => &RU,
        Language::Italian => &IT,
        Language::German => &DE,
        Language::Romanian => &RO,
    }
}

/// All eight packs.
pub fn all_packs() -> impl Iterator<Item = &'static LanguagePack> {
    Language::ALL.into_iter().map(pack)
}

/// Returns `true` when `text` contains an affirmative button keyword in any
/// of the eight languages (case-insensitive).
pub fn matches_affirmative(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| {
        p.affirmative
            .iter()
            .any(|k| lower.contains(&k.to_lowercase()))
    })
}

/// Returns `true` when `text` looks like a privacy-policy link label or URL
/// fragment in any of the eight languages.
pub fn matches_privacy(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| p.privacy.iter().any(|k| lower.contains(&k.to_lowercase())))
}

/// Returns `true` when `text` contains cookie-banner vocabulary.
pub fn matches_cookie(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| p.cookie.iter().any(|k| lower.contains(&k.to_lowercase())))
}

/// Returns `true` when `text` contains account-creation keywords.
pub fn matches_account(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| p.account.iter().any(|k| lower.contains(&k.to_lowercase())))
}

/// Returns `true` when `text` contains premium/subscription keywords.
pub fn matches_premium(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| p.premium.iter().any(|k| lower.contains(&k.to_lowercase())))
}

/// Returns `true` when `text` contains adult-content warning vocabulary.
pub fn matches_age_warning(text: &str) -> bool {
    let lower = text.to_lowercase();
    all_packs().any(|p| {
        p.age_warning
            .iter()
            .any(|k| lower.contains(&k.to_lowercase()))
    })
}

static EN: LanguagePack = LanguagePack {
    language: Language::English,
    affirmative: &["yes", "enter", "agree", "continue", "accept"],
    privacy: &["privacy", "policy"],
    cookie: &["cookie", "cookies", "consent", "we use cookies"],
    account: &["log in", "login", "sign up", "sign in", "register"],
    premium: &["premium", "subscription", "membership", "upgrade"],
    age_warning: &["18", "adult", "age", "years old", "mature content"],
};

static ES: LanguagePack = LanguagePack {
    language: Language::Spanish,
    affirmative: &["sí", "entrar", "acepto", "continuar", "aceptar"],
    privacy: &["privacidad", "política"],
    cookie: &["cookie", "cookies", "consentimiento", "utilizamos cookies"],
    account: &["iniciar sesión", "registrarse", "acceder"],
    premium: &["premium", "suscripción", "membresía"],
    age_warning: &["18", "adulto", "edad", "mayor de edad"],
};

static FR: LanguagePack = LanguagePack {
    language: Language::French,
    affirmative: &["oui", "entrer", "j'accepte", "continuer", "accepter"],
    privacy: &["confidentialité", "politique", "vie privée"],
    cookie: &[
        "cookie",
        "cookies",
        "consentement",
        "nous utilisons des cookies",
    ],
    account: &["connexion", "s'inscrire", "se connecter"],
    premium: &["premium", "abonnement", "adhésion"],
    age_warning: &["18", "adulte", "âge", "majeur"],
};

static PT: LanguagePack = LanguagePack {
    language: Language::Portuguese,
    affirmative: &["sim", "entrar", "concordo", "continuar", "aceitar"],
    privacy: &["privacidade", "política"],
    cookie: &["cookie", "cookies", "consentimento", "usamos cookies"],
    account: &["entrar", "registrar", "cadastre-se"],
    premium: &["premium", "assinatura"],
    age_warning: &["18", "adulto", "idade", "maior de idade"],
};

static RU: LanguagePack = LanguagePack {
    language: Language::Russian,
    affirmative: &["да", "войти", "согласен", "продолжить", "принять"],
    privacy: &["конфиденциальность", "политика"],
    cookie: &["cookie", "куки", "согласие", "мы используем файлы cookie"],
    account: &["войти", "регистрация"],
    premium: &["премиум", "подписка"],
    age_warning: &["18", "взрослый", "возраст", "совершеннолетний"],
};

static IT: LanguagePack = LanguagePack {
    language: Language::Italian,
    affirmative: &["sì", "entra", "accetto", "continua", "accettare"],
    privacy: &["privacy", "politica", "riservatezza"],
    cookie: &["cookie", "cookies", "consenso", "utilizziamo i cookie"],
    account: &["accedi", "registrati"],
    premium: &["premium", "abbonamento"],
    age_warning: &["18", "adulto", "età", "maggiorenne"],
};

static DE: LanguagePack = LanguagePack {
    language: Language::German,
    affirmative: &["ja", "eintreten", "zustimmen", "weiter", "akzeptieren"],
    privacy: &["datenschutz", "richtlinie"],
    cookie: &["cookie", "cookies", "einwilligung", "wir verwenden cookies"],
    account: &["anmelden", "registrieren", "einloggen"],
    premium: &["premium", "abonnement", "mitgliedschaft"],
    age_warning: &["18", "erwachsene", "alter", "volljährig"],
};

static RO: LanguagePack = LanguagePack {
    language: Language::Romanian,
    affirmative: &["da", "intră", "sunt de acord", "continuă", "accept"],
    privacy: &["confidențialitate", "politica"],
    cookie: &["cookie", "cookies", "consimțământ", "folosim cookie-uri"],
    account: &["autentificare", "înregistrare"],
    premium: &["premium", "abonament"],
    age_warning: &["18", "adult", "vârstă", "major"],
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_languages_have_packs() {
        assert_eq!(Language::ALL.len(), 8);
        for l in Language::ALL {
            let p = pack(l);
            assert_eq!(p.language, l);
            assert!(!p.affirmative.is_empty());
            assert!(!p.privacy.is_empty());
        }
    }

    #[test]
    fn code_roundtrip() {
        for l in Language::ALL {
            assert_eq!(Language::from_code(l.code()), Some(l));
        }
        assert_eq!(Language::from_code("zz"), None);
    }

    #[test]
    fn affirmative_matches_across_languages() {
        assert!(matches_affirmative("Click YES to enter"));
        assert!(matches_affirmative("Продолжить просмотр"));
        assert!(matches_affirmative("J'accepte les conditions"));
        assert!(!matches_affirmative("nothing relevant here"));
    }

    #[test]
    fn privacy_matches_across_languages() {
        assert!(matches_privacy("Privacy Policy"));
        assert!(matches_privacy("Política de privacidad"));
        assert!(matches_privacy("Datenschutzerklärung"));
        assert!(matches_privacy("Политика конфиденциальности"));
        assert!(!matches_privacy("video categories"));
    }

    #[test]
    fn cookie_and_account_and_premium() {
        assert!(matches_cookie("We use cookies to improve your experience"));
        assert!(matches_account("Sign Up for free"));
        assert!(matches_premium("Go Premium today"));
        assert!(matches_age_warning("You must be 18 years old"));
    }
}
