//! Small numeric helpers shared by the analysis crates.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Median over a copy of `values`; `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linear-interpolation percentile (`p` in `[0, 100]`); `None` when empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN values"));
    let rank = (p / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = rank - lo as f64;
        Some(v[lo] + (v[hi] - v[lo]) * frac)
    }
}

/// Integer median of a `u64` slice (lower median for even lengths).
pub fn median_u64(values: &[u64]) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    Some(v[(v.len() - 1) / 2])
}

/// Percentage `part / whole * 100`, `0.0` when `whole == 0`.
pub fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
    }

    #[test]
    fn median_u64_lower_for_even() {
        assert_eq!(median_u64(&[4, 1, 3, 2]), Some(2));
        assert_eq!(median_u64(&[5]), Some(5));
        assert_eq!(median_u64(&[]), None);
    }

    #[test]
    fn pct_handles_zero_whole() {
        assert_eq!(pct(1, 0), 0.0);
        assert_eq!(pct(1, 4), 25.0);
    }
}
