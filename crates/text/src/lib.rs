//! # redlight-text
//!
//! Text algorithms used across the measurement platform:
//!
//! * [`levenshtein`] — edit distance and the normalized similarity used by the
//!   study to attribute related fully-qualified domain names to one entity
//!   (similarity ≥ 0.7 ⇒ same entity, §4.2 of the paper).
//! * [`tfidf`] — term-frequency / inverse-document-frequency vectors with
//!   cosine similarity, used to cluster privacy policies and `<head>`
//!   elements when discovering website owners (§4.1, §7.3).
//! * [`tokenize`] — lightweight word and character tokenizers.
//! * [`lang`] — the eight-language keyword dictionaries the Selenium-style
//!   crawler searches for (consent buttons, privacy-policy links, §3.1).
//! * [`stats`] — small numeric helpers (percentiles, means) shared by the
//!   analysis crates.

#![warn(missing_docs)]

pub mod lang;
pub mod levenshtein;
pub mod stats;
pub mod tfidf;
pub mod tokenize;

pub use lang::{Language, LanguagePack};
pub use levenshtein::{distance, similarity};
pub use tfidf::{cosine_similarity, TfIdfModel, TfIdfVector};
