//! Levenshtein edit distance and normalized string similarity.
//!
//! The study uses the Levenshtein distance between two fully-qualified domain
//! names to decide whether they belong to the same entity: when the
//! normalized similarity exceeds `0.7`, the domains are attributed to a
//! single owner (paper §4.2, heuristic 1). This groups
//! `doublepimp.com`/`doublepimpssl.com` while keeping `doublepimp.com` and
//! `doubleclick.net` apart.

/// Computes the Levenshtein (edit) distance between `a` and `b`.
///
/// The distance is the minimum number of single-character insertions,
/// deletions, and substitutions required to transform `a` into `b`.
/// Operates on Unicode scalar values, not bytes.
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
///
/// ```
/// assert_eq!(redlight_text::levenshtein::distance("kitten", "sitting"), 3);
/// assert_eq!(redlight_text::levenshtein::distance("", "abc"), 3);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    // Keep the shorter string on the column axis to minimize the row buffer.
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }

    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[short.len()]
}

/// Normalized similarity in `[0, 1]`: `1 - distance / max(|a|, |b|)`.
///
/// Two empty strings are defined to have similarity `1.0`.
///
/// ```
/// let s = redlight_text::levenshtein::similarity("doublepimp.com", "doublepimpssl.com");
/// assert!(s > 0.7);
/// let d = redlight_text::levenshtein::similarity("doublepimp.com", "doubleclick.net");
/// assert!(d < 0.7);
/// ```
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - distance(a, b) as f64 / max_len as f64
}

/// Similarity threshold above which the study considers two FQDNs to belong
/// to the same entity (§4.2).
pub const SAME_ENTITY_THRESHOLD: f64 = 0.7;

/// Returns `true` when `a` and `b` are similar enough to be attributed to the
/// same entity under the study's 0.7 threshold.
pub fn same_entity(a: &str, b: &str) -> bool {
    similarity(a, b) >= SAME_ENTITY_THRESHOLD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(distance("exoclick.com", "exoclick.com"), 0);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(distance("", ""), 0);
        assert_eq!(distance("abc", ""), 3);
        assert_eq!(distance("", "abcd"), 4);
    }

    #[test]
    fn classic_cases() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("flaw", "lawn"), 2);
        assert_eq!(distance("gumbo", "gambol"), 2);
    }

    #[test]
    fn unicode_chars_count_as_one_edit() {
        assert_eq!(distance("caf\u{e9}", "cafe"), 1);
    }

    #[test]
    fn symmetry() {
        assert_eq!(distance("abcdef", "azced"), distance("azced", "abcdef"));
    }

    #[test]
    fn paper_example_groups_and_separates() {
        assert!(same_entity("doublepimp.com", "doublepimpssl.com"));
        assert!(!same_entity("doublepimp.com", "doubleclick.net"));
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("a", "a"), 1.0);
        assert_eq!(similarity("a", "b"), 0.0);
    }

    #[test]
    fn similarity_is_monotonic_in_shared_prefix() {
        let base = "tracker.example.com";
        let close = "tracker.example.org";
        let far = "zzz.unrelated.net";
        assert!(similarity(base, close) > similarity(base, far));
    }
}
