//! TF-IDF document vectors and cosine similarity.
//!
//! The study applies TF-IDF in two places:
//!
//! * §4.1 — measuring the similarity of privacy policies and of the HTML
//!   `<head>` element across pairs of pornographic websites to discover
//!   clusters owned by the same organization;
//! * §7.3 — computing pairwise policy similarity over ~1.2 M policy pairs
//!   (76 % of pairs score ≥ 0.5).
//!
//! Terms are interned into `u32` ids so pairwise similarity over thousands of
//! documents stays cheap; vectors are stored sparse and L2-normalized.

use std::collections::HashMap;

use crate::tokenize;

/// A sparse, L2-normalized TF-IDF vector: `(term id, weight)` pairs sorted by
/// term id.
#[derive(Debug, Clone, PartialEq)]
pub struct TfIdfVector {
    entries: Vec<(u32, f64)>,
}

impl TfIdfVector {
    /// Number of non-zero terms.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(term id, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }
}

/// Cosine similarity between two L2-normalized sparse vectors, in `[0, 1]`
/// (weights are non-negative, so the result is never negative in practice).
pub fn cosine_similarity(a: &TfIdfVector, b: &TfIdfVector) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut dot = 0.0;
    while i < a.entries.len() && j < b.entries.len() {
        let (ta, wa) = a.entries[i];
        let (tb, wb) = b.entries[j];
        match ta.cmp(&tb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += wa * wb;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

/// A fitted TF-IDF model over a document corpus.
///
/// Build with [`TfIdfModel::fit`], then obtain per-document vectors with
/// [`TfIdfModel::vector`] and compare them with [`cosine_similarity`].
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    vocab: HashMap<String, u32>,
    idf: Vec<f64>,
    vectors: Vec<TfIdfVector>,
}

impl TfIdfModel {
    /// Fits the model on `documents`, tokenizing each with
    /// [`tokenize::words`]. IDF uses the smoothed form
    /// `ln((1 + N) / (1 + df)) + 1`, so terms present in every document still
    /// carry a small positive weight.
    pub fn fit<S: AsRef<str>>(documents: &[S]) -> Self {
        let tokenized: Vec<Vec<String>> = documents
            .iter()
            .map(|d| tokenize::words(d.as_ref()))
            .collect();
        Self::fit_tokenized(&tokenized)
    }

    /// Fits the model on pre-tokenized documents.
    pub fn fit_tokenized(documents: &[Vec<String>]) -> Self {
        let n_docs = documents.len();
        let mut vocab: HashMap<String, u32> = HashMap::new();
        let mut doc_freq: Vec<u32> = Vec::new();

        // First pass: vocabulary + document frequencies.
        let mut term_counts: Vec<HashMap<u32, u32>> = Vec::with_capacity(n_docs);
        for doc in documents {
            let mut counts: HashMap<u32, u32> = HashMap::new();
            for term in doc {
                let next_id = vocab.len() as u32;
                let id = *vocab.entry(term.clone()).or_insert(next_id);
                if id as usize == doc_freq.len() {
                    doc_freq.push(0);
                }
                *counts.entry(id).or_insert(0) += 1;
            }
            for &id in counts.keys() {
                doc_freq[id as usize] += 1;
            }
            term_counts.push(counts);
        }

        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| ((1.0 + n_docs as f64) / (1.0 + df as f64)).ln() + 1.0)
            .collect();

        // Second pass: weighted, normalized vectors.
        let vectors = term_counts
            .into_iter()
            .map(|counts| {
                let mut entries: Vec<(u32, f64)> = counts
                    .into_iter()
                    .map(|(id, tf)| (id, tf as f64 * idf[id as usize]))
                    .collect();
                entries.sort_unstable_by_key(|&(id, _)| id);
                let norm = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for e in &mut entries {
                        e.1 /= norm;
                    }
                }
                TfIdfVector { entries }
            })
            .collect();

        Self {
            vocab,
            idf,
            vectors,
        }
    }

    /// Number of documents the model was fitted on.
    pub fn n_documents(&self) -> usize {
        self.vectors.len()
    }

    /// Vocabulary size.
    pub fn n_terms(&self) -> usize {
        self.vocab.len()
    }

    /// The fitted vector for document `idx` (fit order).
    pub fn vector(&self, idx: usize) -> &TfIdfVector {
        &self.vectors[idx]
    }

    /// Similarity between fitted documents `i` and `j`.
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        cosine_similarity(&self.vectors[i], &self.vectors[j])
    }

    /// Projects a new document into the fitted space (unknown terms are
    /// ignored) and returns its normalized vector.
    pub fn transform(&self, document: &str) -> TfIdfVector {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for term in tokenize::words(document) {
            if let Some(&id) = self.vocab.get(&term) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let mut entries: Vec<(u32, f64)> = counts
            .into_iter()
            .map(|(id, tf)| (id, tf as f64 * self.idf[id as usize]))
            .collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for e in &mut entries {
                e.1 /= norm;
            }
        }
        TfIdfVector { entries }
    }

    /// Greedy single-link clustering: documents `i`, `j` end up in one
    /// cluster when some chain of pairwise similarities ≥ `threshold`
    /// connects them. Returns cluster ids aligned with document indices.
    ///
    /// This mirrors the study's owner-discovery step (§4.1): pairs of privacy
    /// policies / `<head>` elements with high TF-IDF similarity are merged
    /// into candidate same-owner clusters.
    pub fn cluster(&self, threshold: f64) -> Vec<usize> {
        let n = self.vectors.len();
        let mut parent: Vec<usize> = (0..n).collect();

        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        for i in 0..n {
            for j in (i + 1)..n {
                if self.similarity(i, j) >= threshold {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        // Compact roots to dense cluster ids.
        let mut label: HashMap<usize, usize> = HashMap::new();
        (0..n)
            .map(|i| {
                let root = find(&mut parent, i);
                let next = label.len();
                *label.entry(root).or_insert(next)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_documents_have_similarity_one() {
        let m = TfIdfModel::fit(&["we value your privacy", "we value your privacy"]);
        assert!((m.similarity(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_documents_have_similarity_zero() {
        let m = TfIdfModel::fit(&["alpha beta gamma", "delta epsilon zeta"]);
        assert_eq!(m.similarity(0, 1), 0.0);
    }

    #[test]
    fn similar_documents_score_between_zero_and_one() {
        let m = TfIdfModel::fit(&[
            "this privacy policy describes cookies and data collection",
            "this privacy policy describes advertising partners and data collection",
            "completely unrelated cooking recipe with tomatoes",
        ]);
        let s01 = m.similarity(0, 1);
        let s02 = m.similarity(0, 2);
        assert!(s01 > 0.3, "related policies should correlate: {s01}");
        assert!(s02 < s01, "unrelated doc must be less similar");
    }

    #[test]
    fn vectors_are_l2_normalized() {
        let m = TfIdfModel::fit(&["one two three two three three"]);
        let norm: f64 = m.vector(0).iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_matches_fitted_vector_for_same_text() {
        let docs = ["cookie consent banner text", "privacy policy body"];
        let m = TfIdfModel::fit(&docs);
        let t = m.transform(docs[0]);
        assert!((cosine_similarity(&t, m.vector(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transform_ignores_unknown_terms() {
        let m = TfIdfModel::fit(&["known words only"]);
        let t = m.transform("unseen vocabulary entirely");
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn clustering_groups_templated_policies() {
        let template_a = "this privacy policy explains how acme collects cookies analytics data";
        let template_a2 = "this privacy policy explains how acme collects cookies advertising data";
        let other = "welcome to our video portal enjoy streaming content daily updates";
        let m = TfIdfModel::fit(&[template_a, template_a2, other]);
        let clusters = m.cluster(0.5);
        assert_eq!(clusters[0], clusters[1]);
        assert_ne!(clusters[0], clusters[2]);
    }

    #[test]
    fn empty_document_is_all_zero_and_harmless() {
        let m = TfIdfModel::fit(&["", "some words"]);
        assert_eq!(m.vector(0).nnz(), 0);
        assert_eq!(m.similarity(0, 1), 0.0);
    }
}
