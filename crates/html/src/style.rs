//! Inline-style parsing and "floating element" detection.
//!
//! The Selenium-style crawler detects consent banners and age gates by
//! looking for **floating elements** (§3.1): overlays positioned with
//! `position: fixed/absolute`, high `z-index`, or modal-ish class names.

use crate::dom::{Document, NodeId};

/// A parsed `style="..."` attribute: lowercase property → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InlineStyle {
    props: Vec<(String, String)>,
}

impl InlineStyle {
    /// Parses `property: value; property: value` declarations.
    pub fn parse(style: &str) -> InlineStyle {
        let props = style
            .split(';')
            .filter_map(|decl| {
                let (k, v) = decl.split_once(':')?;
                let k = k.trim().to_ascii_lowercase();
                let v = v.trim().to_string();
                if k.is_empty() || v.is_empty() {
                    None
                } else {
                    Some((k, v))
                }
            })
            .collect();
        InlineStyle { props }
    }

    /// Value of `property`, if declared.
    pub fn get(&self, property: &str) -> Option<&str> {
        self.props
            .iter()
            .rev() // later declarations win
            .find(|(k, _)| k == property)
            .map(|(_, v)| v.as_str())
    }

    /// Numeric `z-index`, when declared and parseable.
    pub fn z_index(&self) -> Option<i64> {
        self.get("z-index").and_then(|v| v.trim().parse().ok())
    }

    /// `true` for `position: fixed` or `position: absolute`.
    pub fn is_positioned_overlay(&self) -> bool {
        matches!(
            self.get("position").map(str::to_ascii_lowercase).as_deref(),
            Some("fixed") | Some("absolute")
        )
    }
}

/// Class-name fragments that advertise an overlay even without inline styles.
const OVERLAY_CLASS_HINTS: &[&str] = &["modal", "overlay", "popup", "banner", "notice", "consent"];

/// Returns `true` when element `id` *floats* above the page: positioned
/// overlay, large z-index, or overlay-ish class names.
pub fn is_floating(doc: &Document, id: NodeId) -> bool {
    let Some(e) = doc.element(id) else {
        return false;
    };
    if let Some(style) = e.attr("style") {
        let parsed = InlineStyle::parse(style);
        if parsed.is_positioned_overlay() || parsed.z_index().is_some_and(|z| z >= 100) {
            return true;
        }
    }
    e.classes().any(|c| {
        let lc = c.to_ascii_lowercase();
        OVERLAY_CLASS_HINTS.iter().any(|hint| lc.contains(hint))
    })
}

/// All floating elements of a document, pre-order.
pub fn floating_elements(doc: &Document) -> Vec<NodeId> {
    doc.descendants()
        .filter(|&id| is_floating(doc, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn parses_declarations() {
        let s = InlineStyle::parse("position: Fixed; z-index: 9999; top:0");
        assert_eq!(s.get("position"), Some("Fixed"));
        assert_eq!(s.z_index(), Some(9999));
        assert!(s.is_positioned_overlay());
        assert_eq!(s.get("missing"), None);
    }

    #[test]
    fn later_declarations_win() {
        let s = InlineStyle::parse("position: static; position: fixed");
        assert!(s.is_positioned_overlay());
    }

    #[test]
    fn malformed_declarations_are_skipped() {
        let s = InlineStyle::parse(";;;nonsense;;:empty;x:");
        assert_eq!(s.get("x"), None);
        assert!(!s.is_positioned_overlay());
    }

    #[test]
    fn floating_detection_by_style_and_class() {
        let doc = parse(
            r#"<div id="a" style="position:fixed">gate</div>
               <div id="b" class="cookie-banner-wrap">notice</div>
               <div id="c" style="z-index: 5000">high</div>
               <div id="d">plain content</div>"#,
        );
        let float_ids: Vec<String> = floating_elements(&doc)
            .iter()
            .filter_map(|&id| doc.element(id).and_then(|e| e.id()).map(str::to_string))
            .collect();
        assert_eq!(float_ids, vec!["a", "b", "c"]);
    }

    #[test]
    fn low_z_index_is_not_floating() {
        let doc = parse(r#"<div id="x" style="z-index: 2">x</div>"#);
        assert!(floating_elements(&doc).is_empty());
    }
}
