//! HTML tokenizer: turns markup into a stream of tags, text and comments.
//!
//! Covers the HTML that real-world landing pages are made of — attributes
//! with single/double/no quotes, void elements, comments, doctypes and raw
//! text elements (`<script>`, `<style>`) whose content must not be parsed as
//! markup.

/// One parsed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Name.
    pub name: String,
    /// Value.
    pub value: String,
}

/// A token produced by the tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=...>`; `self_closing` covers both `<br/>` and void tags.
    StartTag {
        /// Name.
        name: String,
        /// Attributes.
        attributes: Vec<Attribute>,
        /// Self closing.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// Text content (entity-decoded for the common entities).
    Text(String),
    /// `<!-- ... -->`.
    Comment(String),
    /// `<!DOCTYPE ...>`.
    Doctype(String),
}

/// Elements whose content is raw text up to the matching close tag.
fn is_raw_text(name: &str) -> bool {
    matches!(name, "script" | "style")
}

/// Decodes the handful of entities that matter for keyword matching.
pub fn decode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let mut replaced = false;
        for (ent, ch) in [
            ("&amp;", '&'),
            ("&lt;", '<'),
            ("&gt;", '>'),
            ("&quot;", '"'),
            ("&#39;", '\''),
            ("&apos;", '\''),
            ("&nbsp;", ' '),
        ] {
            if rest.starts_with(ent) {
                out.push(ch);
                rest = &rest[ent.len()..];
                replaced = true;
                break;
            }
        }
        if !replaced {
            out.push('&');
            rest = &rest[1..];
        }
    }
    out.push_str(rest);
    out
}

/// Tokenizes `input` into a token stream. The tokenizer is lenient: stray
/// `<` become text, unterminated constructs consume to end of input.
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    let mut raw_until: Option<String> = None;

    while pos < bytes.len() {
        if let Some(tag) = raw_until.clone() {
            // Inside <script>/<style>: scan for the matching close tag.
            let close = format!("</{tag}");
            let hay = &input[pos..];
            let end = hay.to_ascii_lowercase().find(&close);
            match end {
                Some(off) => {
                    if off > 0 {
                        tokens.push(Token::Text(hay[..off].to_string()));
                    }
                    pos += off;
                    raw_until = None;
                    // fall through to parse the close tag normally
                }
                None => {
                    tokens.push(Token::Text(hay.to_string()));
                    pos = bytes.len();
                    raw_until = None;
                    continue;
                }
            }
        }

        let rest = &input[pos..];
        if let Some(stripped) = rest.strip_prefix("<!--") {
            let end = stripped.find("-->");
            match end {
                Some(off) => {
                    tokens.push(Token::Comment(stripped[..off].to_string()));
                    pos += 4 + off + 3;
                }
                None => {
                    tokens.push(Token::Comment(stripped.to_string()));
                    pos = bytes.len();
                }
            }
            continue;
        }
        if rest.len() >= 2 && rest.starts_with('<') && rest[1..].starts_with('!') {
            let end = rest.find('>');
            match end {
                Some(off) => {
                    tokens.push(Token::Doctype(rest[2..off].trim().to_string()));
                    pos += off + 1;
                }
                None => pos = bytes.len(),
            }
            continue;
        }
        if rest.starts_with("</") {
            let end = rest.find('>');
            match end {
                Some(off) => {
                    let name = rest[2..off].trim().to_ascii_lowercase();
                    if !name.is_empty() {
                        tokens.push(Token::EndTag { name });
                    }
                    pos += off + 1;
                }
                None => pos = bytes.len(),
            }
            continue;
        }
        if rest.starts_with('<')
            && rest[1..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
        {
            match parse_start_tag(rest) {
                Some((token, consumed)) => {
                    if let Token::StartTag {
                        name, self_closing, ..
                    } = &token
                    {
                        if is_raw_text(name) && !self_closing {
                            raw_until = Some(name.clone());
                        }
                    }
                    tokens.push(token);
                    pos += consumed;
                }
                None => {
                    // Malformed tag: emit '<' as text and move on.
                    push_text(&mut tokens, "<");
                    pos += 1;
                }
            }
            continue;
        }
        // Text run up to the next '<' (skip at least the first char, which
        // may be multi-byte).
        let first_len = rest.chars().next().map(char::len_utf8).unwrap_or(1);
        let next = rest[first_len..]
            .find('<')
            .map(|i| i + first_len)
            .unwrap_or(rest.len());
        push_text(&mut tokens, &rest[..next]);
        pos += next;
    }
    tokens
}

fn push_text(tokens: &mut Vec<Token>, raw: &str) {
    let decoded = decode_entities(raw);
    if let Some(Token::Text(prev)) = tokens.last_mut() {
        prev.push_str(&decoded);
    } else {
        tokens.push(Token::Text(decoded));
    }
}

/// Parses `<name attrs...>` returning the token and bytes consumed.
fn parse_start_tag(input: &str) -> Option<(Token, usize)> {
    debug_assert!(input.starts_with('<'));
    let bytes = input.as_bytes();
    let mut i = 1;
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let name = input[name_start..i].to_ascii_lowercase();
    let mut attributes = Vec::new();
    let mut self_closing = false;

    loop {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None; // unterminated tag
        }
        match bytes[i] {
            b'>' => {
                i += 1;
                break;
            }
            b'/' => {
                self_closing = true;
                i += 1;
            }
            _ => {
                // Attribute name.
                let an_start = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && !matches!(bytes[i], b'=' | b'>' | b'/')
                {
                    i += 1;
                }
                if i == an_start {
                    i += 1; // skip stray byte
                    continue;
                }
                let attr_name = input[an_start..i].to_ascii_lowercase();
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let mut value = String::new();
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                        let quote = bytes[i];
                        i += 1;
                        let v_start = i;
                        while i < bytes.len() && bytes[i] != quote {
                            i += 1;
                        }
                        value = decode_entities(&input[v_start..i]);
                        i = (i + 1).min(bytes.len());
                    } else {
                        let v_start = i;
                        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>'
                        {
                            i += 1;
                        }
                        value = decode_entities(&input[v_start..i]);
                    }
                }
                attributes.push(Attribute {
                    name: attr_name,
                    value,
                });
            }
        }
    }
    Some((
        Token::StartTag {
            name,
            attributes,
            self_closing,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(tokens: &[Token], idx: usize) -> (&str, &[Attribute], bool) {
        match &tokens[idx] {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => (name.as_str(), attributes.as_slice(), *self_closing),
            t => panic!("expected start tag, got {t:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<html><body>Hello</body></html>");
        assert_eq!(toks.len(), 5);
        assert_eq!(start(&toks, 0).0, "html");
        assert_eq!(toks[2], Token::Text("Hello".into()));
        assert_eq!(
            toks[4],
            Token::EndTag {
                name: "html".into()
            }
        );
    }

    #[test]
    fn attributes_in_all_quote_styles() {
        let toks = tokenize(r#"<a href="https://x.com/p" class='big' data-id=42 hidden>"#);
        let (name, attrs, _) = start(&toks, 0);
        assert_eq!(name, "a");
        assert_eq!(attrs.len(), 4);
        assert_eq!(attrs[0].value, "https://x.com/p");
        assert_eq!(attrs[1].value, "big");
        assert_eq!(attrs[2].value, "42");
        assert_eq!(attrs[3].value, "");
    }

    #[test]
    fn script_content_is_raw_text() {
        let toks = tokenize("<script>if (a < b) { x = '<div>'; }</script><p>after</p>");
        assert_eq!(start(&toks, 0).0, "script");
        assert_eq!(toks[1], Token::Text("if (a < b) { x = '<div>'; }".into()));
        assert_eq!(
            toks[2],
            Token::EndTag {
                name: "script".into()
            }
        );
        assert_eq!(start(&toks, 3).0, "p");
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- RTA-5042-1996-1400-1577-RTA --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(
            toks[1],
            Token::Comment(" RTA-5042-1996-1400-1577-RTA ".into())
        );
    }

    #[test]
    fn self_closing_and_case_normalization() {
        let toks = tokenize("<IMG SRC='/pixel.gif'/>");
        let (name, attrs, selfc) = start(&toks, 0);
        assert_eq!(name, "img");
        assert_eq!(attrs[0].name, "src");
        assert!(selfc);
    }

    #[test]
    fn entities_are_decoded_in_text() {
        let toks = tokenize("<p>Terms &amp; Conditions &lt;18+&gt;&nbsp;ok</p>");
        assert_eq!(toks[1], Token::Text("Terms & Conditions <18+> ok".into()));
    }

    #[test]
    fn stray_angle_bracket_is_text() {
        let toks = tokenize("1 < 2 but <b>3</b>");
        assert_eq!(toks[0], Token::Text("1 < 2 but ".into()));
        assert_eq!(start(&toks, 1).0, "b");
    }

    #[test]
    fn multibyte_text_runs_do_not_panic() {
        // Regression: a text run starting with a multi-byte char used to
        // slice at byte 1 and panic.
        let toks = tokenize("<a>войти</a> <b>да</b>");
        assert_eq!(toks[1], Token::Text("войти".into()));
        assert!(toks.iter().any(|t| *t == Token::Text("да".into())));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        tokenize("<div class='x");
        tokenize("<!-- never closed");
        tokenize("<script>var x = 1;");
        tokenize("</");
        tokenize("<");
    }
}
