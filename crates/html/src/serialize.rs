//! DOM → HTML serialization (round-trip support and screenshot-free
//! "what did the crawler see" debugging).

use crate::dom::{Document, NodeId, NodeKind};

/// Serializes the subtree rooted at `id` back to HTML.
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out);
    out
}

/// Serializes the whole document.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for &child in &doc.node(doc.root()).children {
        write_node(doc, child, &mut out);
    }
    out
}

fn escape_text(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(value: &str) -> String {
    escape_text(value).replace('"', "&quot;")
}

fn write_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).kind {
        NodeKind::Root => {
            for &child in &doc.node(id).children {
                write_node(doc, child, out);
            }
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeKind::Element(e) => {
            out.push('<');
            out.push_str(&e.tag);
            for (name, value) in &e.attributes {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&escape_attr(value));
                out.push('"');
            }
            out.push('>');
            let children = &doc.node(id).children;
            if !children.is_empty() || !is_void(&e.tag) {
                for &child in children {
                    write_node(doc, child, out);
                }
                out.push_str("</");
                out.push_str(&e.tag);
                out.push('>');
            }
        }
    }
}

fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_preserves_structure() {
        let src = r#"<div id="x"><p>a &amp; b</p><img src="p.gif"></div>"#;
        let doc = parse(src);
        let out = serialize(&doc);
        // Reparse: same structure.
        let doc2 = parse(&out);
        assert_eq!(
            crate::query::by_tag(&doc2, "p").len(),
            crate::query::by_tag(&doc, "p").len()
        );
        assert!(out.contains("a &amp; b"));
        assert!(out.contains(r#"<img src="p.gif">"#));
    }

    #[test]
    fn attribute_values_are_escaped() {
        let doc = parse(r#"<a href='x?a=1&amp;b="q"'>l</a>"#);
        let out = serialize(&doc);
        assert!(out.contains("&quot;"), "{out}");
        assert!(parse(&out).len() == doc.len());
    }
}
