//! # redlight-html
//!
//! A small, dependency-free HTML engine: tokenizer, tree-building parser,
//! arena DOM and query helpers.
//!
//! The crawlers need exactly what OpenWPM/Selenium get from a real browser's
//! DOM: find `<script>`/`<img>`/`<iframe>`/`<link>` resources to load, find
//! anchor links whose text or href mentions privacy policies, find floating
//! elements (consent banners and age gates) via inline styles, walk up to
//! parent/grandparent elements to verify banner context (paper §3.1), and
//! extract rendered text.

#![warn(missing_docs)]

pub mod dom;
pub mod parser;
pub mod query;
pub mod serialize;
pub mod style;
pub mod tokenizer;

pub use dom::{Document, ElementData, Node, NodeId, NodeKind};
pub use parser::parse;
