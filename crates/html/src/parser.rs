//! Tree construction: token stream → [`Document`].
//!
//! Implements a lenient subset of the HTML5 tree-building rules: void
//! elements never take children, mis-nested close tags pop to the nearest
//! matching open element, and unknown close tags are ignored — enough to
//! build a faithful DOM for real-world-shaped landing pages.

use crate::dom::{Document, ElementData, NodeId, NodeKind};
use crate::tokenizer::{tokenize, Token};

/// Elements that cannot have children (HTML void elements).
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Parses `html` into a [`Document`]. Never fails: malformed input degrades
/// to a best-effort tree, exactly like a browser.
pub fn parse(html: &str) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<(NodeId, String)> = vec![(doc.root(), String::new())];

    for token in tokenize(html) {
        let current = stack.last().expect("stack never empties").0;
        match token {
            Token::StartTag {
                name,
                attributes,
                self_closing,
            } => {
                let id = doc.append(
                    current,
                    NodeKind::Element(ElementData {
                        tag: name.clone(),
                        attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                    }),
                );
                if !self_closing && !is_void(&name) {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                // Pop to the nearest matching open element, if any.
                if let Some(pos) = stack.iter().rposition(|(_, n)| *n == name) {
                    if pos > 0 {
                        stack.truncate(pos);
                    }
                }
            }
            Token::Text(text) => {
                if !text.is_empty() {
                    doc.append(current, NodeKind::Text(text));
                }
            }
            Token::Comment(c) => {
                doc.append(current, NodeKind::Comment(c));
            }
            Token::Doctype(_) => {}
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;

    #[test]
    fn nested_structure() {
        let doc = parse("<html><body><div id='a'><p>text</p></div></body></html>");
        let div = query::by_id(&doc, "a").unwrap();
        let e = doc.element(div).unwrap();
        assert_eq!(e.tag, "div");
        assert_eq!(doc.text_content(div), "text");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<div><img src='a.gif'><p>after img</p></div>");
        let imgs = query::by_tag(&doc, "img");
        assert_eq!(imgs.len(), 1);
        assert!(doc.node(imgs[0]).children.is_empty());
        // <p> must be a sibling of <img>, i.e. child of <div>.
        let p = query::by_tag(&doc, "p")[0];
        let div = query::by_tag(&doc, "div")[0];
        assert_eq!(doc.parent(p), Some(div));
    }

    #[test]
    fn misnested_close_tags_recover() {
        let doc = parse("<b><i>text</b></i><p>after</p>");
        assert_eq!(query::by_tag(&doc, "p").len(), 1);
    }

    #[test]
    fn unknown_close_tag_is_ignored() {
        let doc = parse("<div>a</span>b</div>");
        let div = query::by_tag(&doc, "div")[0];
        assert_eq!(doc.text_content(div), "a b");
    }

    #[test]
    fn script_bodies_survive_verbatim() {
        let doc =
            parse("<script src='t.js'></script><script>canvas.fillText('x<y', 0, 0)</script>");
        let scripts = query::by_tag(&doc, "script");
        assert_eq!(scripts.len(), 2);
        assert_eq!(doc.element(scripts[0]).unwrap().attr("src"), Some("t.js"));
        assert!(doc.text_content(scripts[1]).contains("x<y"));
    }

    #[test]
    fn empty_and_garbage_inputs() {
        assert!(parse("").is_empty());
        let doc = parse("<<<>>>");
        assert!(!doc.is_empty());
    }
}
