//! Arena-based DOM.
//!
//! Nodes live in a flat `Vec` inside [`Document`]; [`NodeId`] indexes into
//! it. This keeps the tree cheap to build and trivially serializable, and
//! gives the crawler the parent/child navigation the paper's banner
//! verification needs ("inspect the text of the parent and grandparent
//! elements", §3.1).

use serde::{Deserialize, Serialize};

/// Index of a node within its [`Document`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Element payload: tag name and attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ElementData {
    /// Tag.
    pub tag: String,
    /// Attributes.
    pub attributes: Vec<(String, String)>,
}

impl ElementData {
    /// First value of attribute `name` (names are stored lowercase).
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `id` attribute.
    pub fn id(&self) -> Option<&str> {
        self.attr("id")
    }

    /// Whitespace-separated classes.
    pub fn classes(&self) -> impl Iterator<Item = &str> {
        self.attr("class").unwrap_or("").split_whitespace()
    }

    /// `true` when the element has class `class`.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes().any(|c| c == class)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// The synthetic document root.
    Root,
    /// Element.
    Element(ElementData),
    /// Text.
    Text(String),
    /// Comment.
    Comment(String),
}

/// One DOM node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Kind.
    pub kind: NodeKind,
    /// Parent.
    pub parent: Option<NodeId>,
    /// Children.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// A document containing only the root node.
    pub fn new() -> Self {
        Document {
            nodes: vec![Node {
                kind: NodeKind::Root,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Appends a new node under `parent` and returns its id.
    pub fn append(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Total node count (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Parent of `id`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.0 as usize].parent
    }

    /// Pre-order traversal of the whole tree (excluding the root).
    pub fn descendants(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Arena insertion order *is* pre-order for a parser-built tree, but
        // walk explicitly so manually-built trees behave too.
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = self.nodes[0].children.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            order.push(id);
            stack.extend(self.nodes[id.0 as usize].children.iter().rev());
        }
        order.into_iter()
    }

    /// Pre-order traversal of the subtree rooted at `id` (inclusive).
    pub fn subtree(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut order = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            order.push(n);
            stack.extend(self.nodes[n.0 as usize].children.iter().rev());
        }
        order.into_iter()
    }

    /// The element data of `id`, when it is an element.
    pub fn element(&self, id: NodeId) -> Option<&ElementData> {
        match &self.nodes[id.0 as usize].kind {
            NodeKind::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Concatenated text content of the subtree at `id`, whitespace-joined.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        for n in self.subtree(id) {
            if let NodeKind::Text(t) = &self.nodes[n.0 as usize].kind {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(trimmed);
                }
            }
        }
        out
    }

    /// Ancestor chain of `id`, nearest first, excluding the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(p) = cur {
            if p == self.root() {
                break;
            }
            out.push(p);
            cur = self.parent(p);
        }
        out
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(tag: &str) -> NodeKind {
        NodeKind::Element(ElementData {
            tag: tag.into(),
            attributes: vec![],
        })
    }

    #[test]
    fn build_and_navigate() {
        let mut doc = Document::new();
        let html = doc.append(doc.root(), elem("html"));
        let body = doc.append(html, elem("body"));
        let p = doc.append(body, elem("p"));
        let t = doc.append(p, NodeKind::Text("hello".into()));
        assert_eq!(doc.parent(t), Some(p));
        assert_eq!(doc.ancestors(t), vec![p, body, html]);
        assert_eq!(doc.len(), 5);
    }

    #[test]
    fn text_content_joins_subtree() {
        let mut doc = Document::new();
        let div = doc.append(doc.root(), elem("div"));
        doc.append(div, NodeKind::Text("  We use ".into()));
        let b = doc.append(div, elem("b"));
        doc.append(b, NodeKind::Text("cookies".into()));
        doc.append(div, NodeKind::Text(" ok?  ".into()));
        assert_eq!(doc.text_content(div), "We use cookies ok?");
    }

    #[test]
    fn descendants_is_preorder() {
        let mut doc = Document::new();
        let a = doc.append(doc.root(), elem("a"));
        let b = doc.append(a, elem("b"));
        let c = doc.append(a, elem("c"));
        let d = doc.append(b, elem("d"));
        let order: Vec<NodeId> = doc.descendants().collect();
        assert_eq!(order, vec![a, b, d, c]);
    }

    #[test]
    fn element_attr_helpers() {
        let e = ElementData {
            tag: "div".into(),
            attributes: vec![
                ("id".into(), "banner".into()),
                ("class".into(), "fixed cookie-notice".into()),
            ],
        };
        assert_eq!(e.id(), Some("banner"));
        assert!(e.has_class("cookie-notice"));
        assert!(!e.has_class("cookie"));
        assert_eq!(e.attr("missing"), None);
    }
}
