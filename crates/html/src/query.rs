//! DOM query helpers: the selector-ish operations the crawlers need.

use crate::dom::{Document, NodeId};

/// All elements with tag `tag` in pre-order.
pub fn by_tag(doc: &Document, tag: &str) -> Vec<NodeId> {
    doc.descendants()
        .filter(|&id| doc.element(id).is_some_and(|e| e.tag == tag))
        .collect()
}

/// First element with `id="id"`.
pub fn by_id(doc: &Document, id: &str) -> Option<NodeId> {
    doc.descendants()
        .find(|&n| doc.element(n).and_then(|e| e.id()) == Some(id))
}

/// All elements carrying class `class`.
pub fn by_class(doc: &Document, class: &str) -> Vec<NodeId> {
    doc.descendants()
        .filter(|&id| doc.element(id).is_some_and(|e| e.has_class(class)))
        .collect()
}

/// All elements that have attribute `name` (any value).
pub fn with_attr(doc: &Document, name: &str) -> Vec<NodeId> {
    doc.descendants()
        .filter(|&id| doc.element(id).is_some_and(|e| e.attr(name).is_some()))
        .collect()
}

/// All `(element, href)` anchor pairs.
pub fn links(doc: &Document) -> Vec<(NodeId, String)> {
    by_tag(doc, "a")
        .into_iter()
        .filter_map(|id| {
            doc.element(id)
                .and_then(|e| e.attr("href"))
                .map(|href| (id, href.to_string()))
        })
        .collect()
}

/// Subresource references a browser would fetch from this document:
/// `(tag, url attribute value)` for scripts, images, iframes and stylesheets.
pub fn subresources(doc: &Document) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for id in doc.descendants() {
        let Some(e) = doc.element(id) else { continue };
        match e.tag.as_str() {
            "script" | "img" | "iframe" => {
                if let Some(src) = e.attr("src") {
                    if !src.is_empty() {
                        out.push((e.tag.clone(), src.to_string()));
                    }
                }
            }
            "link" => {
                let is_css = e
                    .attr("rel")
                    .is_some_and(|r| r.eq_ignore_ascii_case("stylesheet"));
                if is_css {
                    if let Some(href) = e.attr("href") {
                        if !href.is_empty() {
                            out.push(("link".to_string(), href.to_string()));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Inline script bodies (`<script>` without `src`).
pub fn inline_scripts(doc: &Document) -> Vec<String> {
    by_tag(doc, "script")
        .into_iter()
        .filter(|&id| doc.element(id).is_some_and(|e| e.attr("src").is_none()))
        .map(|id| doc.text_content(id))
        .filter(|body| !body.is_empty())
        .collect()
}

/// Elements whose subtree text contains `needle` case-insensitively, deepest
/// matches only (an ancestor is excluded when a child already matches).
pub fn deepest_text_matches(doc: &Document, needle: &str) -> Vec<NodeId> {
    let lower = needle.to_lowercase();
    let matching: Vec<NodeId> = doc
        .descendants()
        .filter(|&id| doc.element(id).is_some())
        .filter(|&id| doc.text_content(id).to_lowercase().contains(&lower))
        .collect();
    matching
        .iter()
        .copied()
        .filter(|&id| {
            !matching
                .iter()
                .any(|&other| other != id && doc.ancestors(other).contains(&id))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const PAGE: &str = r#"
      <html><head>
        <link rel="stylesheet" href="/main.css">
        <script src="https://t.exoclick.com/tag.js"></script>
        <script>host.cookie_set('u','1')</script>
      </head><body>
        <div id="overlay" class="modal warn">
          <p>You must be 18 to <a href="/enter">Enter</a></p>
        </div>
        <img src="/pixel.gif">
        <iframe src="https://ads.net/frame"></iframe>
        <a href="/privacy-policy">Privacy Policy</a>
      </body></html>"#;

    #[test]
    fn tag_id_class_queries() {
        let doc = parse(PAGE);
        assert_eq!(by_tag(&doc, "script").len(), 2);
        assert!(by_id(&doc, "overlay").is_some());
        assert!(by_id(&doc, "missing").is_none());
        assert_eq!(by_class(&doc, "modal").len(), 1);
        assert_eq!(with_attr(&doc, "src").len(), 3);
    }

    #[test]
    fn links_and_subresources() {
        let doc = parse(PAGE);
        let ls = links(&doc);
        assert_eq!(ls.len(), 2);
        assert!(ls.iter().any(|(_, h)| h == "/privacy-policy"));

        let subs = subresources(&doc);
        let urls: Vec<&str> = subs.iter().map(|(_, u)| u.as_str()).collect();
        assert!(urls.contains(&"https://t.exoclick.com/tag.js"));
        assert!(urls.contains(&"/pixel.gif"));
        assert!(urls.contains(&"https://ads.net/frame"));
        assert!(urls.contains(&"/main.css"));
        assert_eq!(subs.len(), 4, "inline script has no src: {subs:?}");
    }

    #[test]
    fn inline_script_bodies() {
        let doc = parse(PAGE);
        let inline = inline_scripts(&doc);
        assert_eq!(inline.len(), 1);
        assert!(inline[0].contains("cookie_set"));
    }

    #[test]
    fn deepest_text_match_prefers_leaf_elements() {
        let doc = parse(PAGE);
        let hits = deepest_text_matches(&doc, "enter");
        assert_eq!(hits.len(), 1);
        assert_eq!(doc.element(hits[0]).unwrap().tag, "a");
        // Parent/grandparent chain is available for banner verification.
        let chain = doc.ancestors(hits[0]);
        let tags: Vec<&str> = chain
            .iter()
            .filter_map(|&id| doc.element(id).map(|e| e.tag.as_str()))
            .collect();
        assert_eq!(&tags[..2], &["p", "div"]);
    }
}
