//! Property suite pinning the discrete-event kernel's determinism
//! contract: delivery order is total and a pure function of the schedule
//! program, cancelled events never deliver, and the queue drains
//! monotonically in time.

use std::collections::HashSet;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;
use redlight_sim::{Actor, ActorId, ActorSystem, EventQueue, Outbox, SimTime};

/// One schedule program: interleaved schedules (with bounded time offsets
/// so ties are common) and cancels of arbitrary earlier events.
#[derive(Debug, Clone)]
struct Program {
    ops: Vec<(u64, bool, usize)>,
}

fn program(offsets: Vec<u64>, cancels: Vec<bool>, targets: Vec<usize>) -> Program {
    let ops = offsets
        .into_iter()
        .zip(cancels)
        .zip(targets)
        .map(|((offset, cancel), target)| (offset, cancel, target))
        .collect();
    Program { ops }
}

/// Runs a program and returns `(delivery log, successfully cancelled
/// payloads)`. The payload of each event is its op index, so logs from
/// different runs are directly comparable.
fn run_program(p: &Program) -> (Vec<(u64, usize)>, HashSet<usize>) {
    let mut q = EventQueue::new();
    let mut ids = Vec::new();
    let mut cancelled = HashSet::new();
    for (idx, &(offset, cancel, target)) in p.ops.iter().enumerate() {
        let id = q.schedule(SimTime::from_nanos(offset), idx);
        ids.push(id);
        if cancel && !ids.is_empty() {
            let victim = target % ids.len();
            if q.cancel(ids[victim]) {
                cancelled.insert(victim);
            }
        }
    }
    let mut log = Vec::new();
    while let Some((at, _, payload)) = q.pop() {
        log.push((at.as_nanos(), payload));
    }
    (log, cancelled)
}

proptest! {
    #[test]
    fn delivery_order_is_total_and_deterministic(
        offsets in vec(0u64..40, 0..160),
        cancels in vec(any::<bool>(), 0..160),
        targets in vec(0usize..160, 0..160),
    ) {
        let p = program(offsets, cancels, targets);
        let (log_a, cancelled_a) = run_program(&p);
        let (log_b, cancelled_b) = run_program(&p);
        // Same program ⇒ identical event log, run to run.
        prop_assert_eq!(&log_a, &log_b);
        prop_assert_eq!(&cancelled_a, &cancelled_b);

        // The order is total: time-sorted, ties strictly by schedule order
        // (the payload IS the schedule index).
        for pair in log_a.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time runs backwards");
            if pair[0].0 == pair[1].0 {
                prop_assert!(
                    pair[0].1 < pair[1].1,
                    "same-instant events out of schedule order: {:?}",
                    pair
                );
            }
        }

        // Conservation: every scheduled event is delivered exactly once or
        // was cancelled, never both, never dropped.
        let delivered: HashSet<usize> = log_a.iter().map(|&(_, p)| p).collect();
        prop_assert_eq!(delivered.len(), log_a.len(), "duplicate delivery");
        prop_assert_eq!(delivered.len() + cancelled_a.len(), p.ops.len());
        for idx in &cancelled_a {
            prop_assert!(!delivered.contains(idx), "cancelled event delivered");
        }
    }

    #[test]
    fn queue_drains_monotonically_under_interleaved_pops(
        offsets in vec(0u64..1_000, 1..120),
        pop_every in 2usize..5,
    ) {
        // Pops interleaved with schedules: later schedules may target times
        // earlier than pending ones, but never earlier than anything already
        // popped (the kernel only schedules at or after `now`). Model that
        // by clamping each offset to the last popped time.
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        let mut floor = 0u64;
        for (i, &offset) in offsets.iter().enumerate() {
            q.schedule(SimTime::from_nanos(floor + offset), i);
            if i % pop_every == 0 {
                if let Some((at, _, _)) = q.pop() {
                    popped.push(at.as_nanos());
                    floor = at.as_nanos();
                }
            }
        }
        while let Some((at, _, _)) = q.pop() {
            popped.push(at.as_nanos());
        }
        prop_assert_eq!(popped.len(), offsets.len());
        for pair in popped.windows(2) {
            prop_assert!(pair[0] <= pair[1], "pop sequence not monotone: {:?}", pair);
        }
    }
}

/// Relay actor for the system-level property: forwards `hops` times with a
/// per-hop delay drawn from its schedule, logging every delivery.
struct Relay {
    peer: ActorId,
    delays: Vec<u64>,
    log: std::rc::Rc<std::cell::RefCell<Vec<(u64, u32)>>>,
}

impl Actor<u32> for Relay {
    fn handle(&mut self, now: SimTime, event: u32, out: &mut Outbox<'_, u32>) {
        self.log.borrow_mut().push((now.as_nanos(), event));
        if event > 0 {
            let delay = self.delays[event as usize % self.delays.len()];
            out.send(self.peer, Duration::from_nanos(delay), event - 1);
        }
    }
}

proptest! {
    #[test]
    fn actor_runs_replay_identically(
        delays in vec(0u64..5_000, 1..20),
        hops in 1u32..60,
    ) {
        let run = |delays: &[u64]| {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let mut sys = ActorSystem::new();
            let me = sys.next_actor_id();
            let a = sys.add_actor(Box::new(Relay {
                peer: me,
                delays: delays.to_vec(),
                log: std::rc::Rc::clone(&log),
            }));
            assert_eq!(a, me, "ids are assigned in registration order");
            sys.send(a, SimTime::ZERO, hops);
            let (end, delivered) = sys.run();
            let events = log.borrow().clone();
            (end.as_nanos(), delivered, events)
        };
        let x = run(&delays);
        let y = run(&delays);
        prop_assert_eq!(&x, &y, "same schedule must replay bit-for-bit");
        prop_assert_eq!(x.1, hops as u64 + 1, "one delivery per hop plus the last");
    }
}
