//! Flight recorder: a bounded ring of recent traffic-kernel events.
//!
//! A million-session run delivers tens of millions of events; recording
//! them all would drown the journal. The recorder instead keeps only the
//! last `capacity` interesting events (arrivals, requests, faults,
//! retries, failures) in a fixed ring — O(1) per event, no allocation
//! after warm-up — and [`FlightRecorder::freeze`] clones the ring into a
//! named snapshot whenever something trips (an SLO violation). After the
//! run, [`FlightRecorder::emit_spans`] attaches each snapshot to the
//! journal as a `flight.freeze.N` span with one child span per ring
//! entry, so the causal neighborhood of a timeout storm is inspectable
//! in the trace viewer without having recorded everything.
//!
//! Everything is logical-time data, so frozen snapshots are as
//! deterministic as the schedule that produced them.

use std::collections::VecDeque;

use redlight_obs::Trace;

use crate::queue::SimTime;

/// What a recorded flight event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A visitor session arrived.
    Arrive,
    /// A session issued its page document request.
    DocRequest,
    /// A session issued a subresource request.
    SubRequest,
    /// A request completed successfully.
    Served,
    /// A request completed with a failure outcome.
    Failed,
    /// The fault injector fired on a request.
    Fault,
    /// A failed request was scheduled for retry (with backoff).
    Retry,
    /// A session exhausted its retry budget and failed outright.
    SessionFailed,
}

impl FlightKind {
    /// Stable label used for journal span names.
    pub fn label(&self) -> &'static str {
        match self {
            FlightKind::Arrive => "arrive",
            FlightKind::DocRequest => "doc_request",
            FlightKind::SubRequest => "sub_request",
            FlightKind::Served => "served",
            FlightKind::Failed => "failed",
            FlightKind::Fault => "fault",
            FlightKind::Retry => "retry",
            FlightKind::SessionFailed => "session_failed",
        }
    }
}

/// One entry in the flight ring. Plain `Copy` data so recording is a
/// ring write, nothing more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Logical delivery time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: FlightKind,
    /// Session slot involved (`u32::MAX` when not applicable).
    pub slot: u32,
    /// Host index involved (`u32::MAX` when not applicable).
    pub host: u32,
    /// Retry attempt number (0 = first try).
    pub attempt: u8,
}

/// A frozen copy of the ring, taken at a trip point.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Why the freeze happened (e.g. `latency`, `error_budget`).
    pub reason: &'static str,
    /// Timeline window index that tripped.
    pub window: u64,
    /// Logical time of the freeze.
    pub at: SimTime,
    /// Ring contents, oldest first.
    pub events: Vec<FlightEvent>,
}

/// The recorder: one ring, a few frozen snapshots.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    max_snapshots: usize,
    ring: VecDeque<FlightEvent>,
    snapshots: Vec<FlightSnapshot>,
    suppressed: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events and at most
    /// `max_snapshots` freezes (later trips are counted, not stored).
    pub fn new(capacity: usize, max_snapshots: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            max_snapshots,
            ring: VecDeque::with_capacity(capacity),
            snapshots: Vec::new(),
            suppressed: 0,
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&mut self, event: FlightEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// Freezes the current ring under `reason`. Snapshots beyond the cap
    /// are suppressed (counted only) so a flapping SLO cannot bloat the
    /// journal.
    pub fn freeze(&mut self, reason: &'static str, window: u64, at: SimTime) {
        if self.snapshots.len() >= self.max_snapshots {
            self.suppressed += 1;
            return;
        }
        self.snapshots.push(FlightSnapshot {
            reason,
            window,
            at,
            events: self.ring.iter().copied().collect(),
        });
    }

    /// Frozen snapshots, in trip order.
    pub fn snapshots(&self) -> &[FlightSnapshot] {
        &self.snapshots
    }

    /// Trips that arrived after the snapshot cap was reached.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Writes every snapshot into `trace` as one shard (`shard_name`):
    /// a `flight.freeze.N` span per snapshot, one child span per ring
    /// entry carrying its logical time, slot, host and attempt.
    pub fn emit_spans(&self, trace: &Trace, shard_name: &str) {
        if self.snapshots.is_empty() && self.suppressed == 0 {
            return;
        }
        let mut tracer = trace.tracer(shard_name);
        for (i, snap) in self.snapshots.iter().enumerate() {
            tracer.open(&format!("flight.freeze.{i:03}"));
            tracer.attr("reason", snap.reason);
            tracer.attr("window", snap.window);
            tracer.attr("at_ns", snap.at.as_nanos());
            tracer.attr("events", snap.events.len());
            if self.suppressed > 0 {
                tracer.attr("suppressed", self.suppressed);
            }
            for ev in &snap.events {
                tracer.open(ev.kind.label());
                tracer.attr("t_ns", ev.at.as_nanos());
                if ev.slot != u32::MAX {
                    tracer.attr("slot", ev.slot);
                }
                if ev.host != u32::MAX {
                    tracer.attr("host", ev.host);
                }
                if ev.attempt != 0 {
                    tracer.attr("attempt", u64::from(ev.attempt));
                }
                tracer.close();
            }
            tracer.close();
        }
        tracer.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            at: SimTime::from_nanos(ns),
            kind,
            slot: 1,
            host: 0,
            attempt: 0,
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut rec = FlightRecorder::new(3, 4);
        for i in 0..5 {
            rec.record(ev(i, FlightKind::Served));
        }
        rec.freeze("latency", 7, SimTime::from_nanos(5));
        let snap = &rec.snapshots()[0];
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].at.as_nanos(), 2, "oldest two evicted");
        assert_eq!(snap.reason, "latency");
        assert_eq!(snap.window, 7);
    }

    #[test]
    fn freezes_beyond_the_cap_are_suppressed() {
        let mut rec = FlightRecorder::new(2, 1);
        rec.record(ev(0, FlightKind::Fault));
        rec.freeze("latency", 0, SimTime::ZERO);
        rec.freeze("error_budget", 1, SimTime::ZERO);
        assert_eq!(rec.snapshots().len(), 1);
        assert_eq!(rec.suppressed(), 1);
    }

    #[test]
    fn snapshots_reach_the_journal_as_spans() {
        let mut rec = FlightRecorder::new(4, 2);
        rec.record(ev(10, FlightKind::Fault));
        rec.record(FlightEvent {
            at: SimTime::from_nanos(20),
            kind: FlightKind::Retry,
            slot: 3,
            host: 2,
            attempt: 1,
        });
        rec.freeze("error_budget", 5, SimTime::from_nanos(25));

        let trace = Trace::new();
        rec.emit_spans(&trace, "traffic.flight");
        let journal = trace.journal();
        let root = journal.find("flight.freeze.000").expect("freeze span");
        assert_eq!(journal.len(), 3, "freeze + two ring entries");
        assert!(journal.spans.iter().any(|s| s.name == "fault"));
        let retry = journal.find("retry").expect("retry span");
        assert_eq!(retry.parent, root.id);
    }

    #[test]
    fn empty_recorder_emits_nothing() {
        let rec = FlightRecorder::new(4, 2);
        let trace = Trace::new();
        rec.emit_spans(&trace, "traffic.flight");
        assert_eq!(trace.journal().len(), 0);
    }
}
