//! Deterministic discrete-event simulation for the redlight measurement
//! pipeline.
//!
//! The synchronous crawl pipeline calls straight through the transport
//! stack, so "time" was only ever recorded, never consumed. This crate
//! adds a logical clock and an event kernel so elapsed time becomes a
//! first-class simulated quantity:
//!
//! * [`queue`] — [`SimTime`] and the stable-order [`EventQueue`]
//!   (`(time, seq)` tie-breaking, tombstone cancellation).
//! * [`kernel`] — [`SimClock`], the [`Actor`] abstraction and the
//!   [`ActorSystem`] run loop.
//! * [`service`] — the per-request [`ServiceModel`] and per-host
//!   connection [`HostPool`]s.
//! * [`transport`] — [`SimTransport`], rehosting the websim `WebServer`
//!   stack on the logical clock so crawler retries and fault stalls cost
//!   real logical time, byte-identically to the synchronous path.
//! * [`traffic`] — the million-visitor load-generator workload
//!   ([`run_traffic`]), reporting throughput and latency percentiles
//!   through `obs` histograms.
//! * [`flight`] — the bounded [`FlightRecorder`] ring that freezes the
//!   causal neighborhood of SLO violations into the journal.
//!
//! Everything is seeded and wall-clock-free: same seed ⇒ same event log,
//! same report, bit for bit.

#![warn(missing_docs)]

pub mod flight;
pub mod kernel;
pub mod queue;
pub mod service;
pub mod traffic;
pub mod transport;

pub use flight::{FlightEvent, FlightKind, FlightRecorder, FlightSnapshot};
pub use kernel::{Actor, ActorId, ActorSystem, Addressed, Outbox, SimClock};
pub use queue::{EventId, EventQueue, SimTime};
pub use service::{HostPool, ServiceModel};
pub use traffic::{
    run_traffic, TierRow, TimelineReport, TimelineSpec, TrafficConfig, TrafficReport,
};
pub use transport::{SimHandle, SimTransport};
