//! The discrete-event kernel: a shared logical clock and an actor system
//! draining one [`EventQueue`].
//!
//! Simulation state is partitioned into [`Actor`]s — in the traffic
//! workload a *client* actor (the load generator owning every in-flight
//! session) and a *host* actor (the server fleet owning per-host
//! connection pools). Actors never call each other: they exchange
//! [`Addressed`] events through the kernel's queue, and the kernel
//! advances the clock to each event's delivery time before dispatching
//! it. Because the queue's delivery order is a pure function of the
//! schedule calls (see [`EventQueue`]), an [`ActorSystem`] run is fully
//! deterministic: same actors + same seeds ⇒ same event log, same final
//! state, bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::queue::{EventId, EventQueue, SimTime};

/// The shared logical clock. Cloning yields another handle onto the same
/// instant; only the kernel (or a synchronous driver like `SimTransport`)
/// advances it, and it never runs backwards.
#[derive(Debug, Clone, Default)]
pub struct SimClock(Arc<AtomicU64>);

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current logical instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.0.load(Ordering::Relaxed))
    }

    /// Advances by `d`, returning the new instant.
    pub fn advance(&self, d: Duration) -> SimTime {
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        SimTime::from_nanos(self.0.fetch_add(nanos, Ordering::Relaxed) + nanos)
    }

    /// Advances to `at` (no-op when `at` is in the past — time is
    /// monotonic).
    pub fn advance_to(&self, at: SimTime) {
        self.0.fetch_max(at.as_nanos(), Ordering::Relaxed);
    }
}

/// Identifies one actor registered with an [`ActorSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub(crate) u32);

/// An event together with the actor it is addressed to.
#[derive(Debug, Clone)]
pub struct Addressed<E> {
    /// Receiving actor.
    pub to: ActorId,
    /// Payload.
    pub event: E,
}

/// One partition of simulation state. `handle` is called with the clock
/// already advanced to the event's delivery time; the actor reacts by
/// mutating its own state and scheduling further events through the
/// [`Outbox`].
pub trait Actor<E> {
    /// Reacts to one delivered event.
    fn handle(&mut self, now: SimTime, event: E, out: &mut Outbox<'_, E>);
}

/// The scheduling surface an actor sees while handling an event.
pub struct Outbox<'a, E> {
    queue: &'a mut EventQueue<Addressed<E>>,
    now: SimTime,
}

impl<E> Outbox<'_, E> {
    /// The current logical instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` for `to` after `delay` (zero delays deliver at the
    /// current instant, after everything already scheduled for it).
    pub fn send(&mut self, to: ActorId, delay: Duration, event: E) -> EventId {
        self.queue
            .schedule(self.now.after(delay), Addressed { to, event })
    }

    /// Cancels a previously scheduled event; `true` when it was pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }
}

/// The kernel: actors, queue, clock, and the run loop.
pub struct ActorSystem<E> {
    clock: SimClock,
    queue: EventQueue<Addressed<E>>,
    actors: Vec<Box<dyn Actor<E>>>,
    delivered: u64,
    tick_hook: Option<Box<dyn FnMut(SimTime)>>,
}

impl<E> Default for ActorSystem<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ActorSystem<E> {
    /// An empty system at time zero.
    pub fn new() -> Self {
        ActorSystem {
            clock: SimClock::new(),
            queue: EventQueue::new(),
            actors: Vec::new(),
            delivered: 0,
            tick_hook: None,
        }
    }

    /// Installs a hook called once per delivered event, with the clock
    /// already advanced to the delivery time but **before** the receiving
    /// actor runs. Telemetry samplers key off this: an event landing at or
    /// past a window boundary closes the window before it can contribute
    /// to it, so sampled series are a pure function of the schedule (same
    /// seed ⇒ byte-identical series). At most one hook; the unobserved
    /// path pays a single `Option` check per event.
    pub fn set_tick_hook(&mut self, hook: impl FnMut(SimTime) + 'static) {
        self.tick_hook = Some(Box::new(hook));
    }

    /// The address the next registered actor will receive. Ids are
    /// assigned in registration order, so mutually-referencing actors can
    /// be wired up before they are boxed.
    pub fn next_actor_id(&self) -> ActorId {
        ActorId(u32::try_from(self.actors.len()).expect("actor overflow"))
    }

    /// Registers an actor, returning its address.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<E>>) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("actor overflow"));
        self.actors.push(actor);
        id
    }

    /// A handle onto the kernel clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Schedules an initial event from outside any actor.
    pub fn send(&mut self, to: ActorId, at: SimTime, event: E) -> EventId {
        self.queue.schedule(at, Addressed { to, event })
    }

    /// Delivers one event: advances the clock, dispatches the receiving
    /// actor. Returns `false` when the queue has drained.
    pub fn step(&mut self) -> bool {
        let Some((at, _, addressed)) = self.queue.pop() else {
            return false;
        };
        self.clock.advance_to(at);
        self.delivered += 1;
        if let Some(hook) = self.tick_hook.as_mut() {
            hook(at);
        }
        let mut out = Outbox {
            queue: &mut self.queue,
            now: at,
        };
        self.actors[addressed.to.0 as usize].handle(at, addressed.event, &mut out);
        true
    }

    /// Runs until the queue drains, returning `(final time, events
    /// delivered)`.
    pub fn run(&mut self) -> (SimTime, u64) {
        while self.step() {}
        (self.clock.now(), self.delivered)
    }

    /// Events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong pair: each actor echoes back `n - 1` until zero.
    struct Pong {
        peer: Option<ActorId>,
        log: Vec<(u64, u32)>,
    }

    impl Actor<u32> for Pong {
        fn handle(&mut self, now: SimTime, event: u32, out: &mut Outbox<'_, u32>) {
            self.log.push((now.as_nanos(), event));
            if event > 0 {
                if let Some(peer) = self.peer {
                    out.send(peer, Duration::from_millis(1), event - 1);
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_logical_time() {
        // Registration order fixes the ids, so peers can be named up front.
        let (ping, pong) = (ActorId(0), ActorId(1));
        let mut sys = ActorSystem::new();
        assert_eq!(
            sys.add_actor(Box::new(Pong {
                peer: Some(pong),
                log: Vec::new(),
            })),
            ping
        );
        assert_eq!(
            sys.add_actor(Box::new(Pong {
                peer: Some(ping),
                log: Vec::new(),
            })),
            pong
        );
        sys.send(ping, SimTime::ZERO, 4);
        let (end, delivered) = sys.run();
        assert_eq!(delivered, 5, "4,3,2,1,0");
        assert_eq!(end.as_duration(), Duration::from_millis(4));
        assert_eq!(sys.delivered(), 5);
    }

    #[test]
    fn tick_hook_sees_every_delivery_before_dispatch() {
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut sys: ActorSystem<u32> = ActorSystem::new();
        let ping = sys.next_actor_id();
        sys.add_actor(Box::new(Pong {
            peer: Some(ping), // self-echo: 3, 2, 1, 0 at 0..=3 ms
            log: Vec::new(),
        }));
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        sys.set_tick_hook(move |now| sink.borrow_mut().push(now.as_nanos()));
        sys.send(ping, SimTime::ZERO, 3);
        let (_, delivered) = sys.run();
        let ticks = seen.borrow();
        assert_eq!(ticks.len() as u64, delivered, "one call per delivery");
        assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "monotone times");
    }

    #[test]
    fn clock_is_monotonic_and_shared() {
        let clock = SimClock::new();
        let view = clock.clone();
        clock.advance(Duration::from_micros(5));
        assert_eq!(view.now().as_nanos(), 5_000);
        view.advance_to(SimTime::from_nanos(2_000));
        assert_eq!(clock.now().as_nanos(), 5_000, "advance_to never rewinds");
    }
}
