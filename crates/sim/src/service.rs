//! The per-request service model and per-host connection pools.
//!
//! [`ServiceModel`] turns a [`SimSpec`] into logical durations: every
//! served response costs its base service time plus a per-KiB transfer
//! cost, with a deterministic ± jitter drawn from `(spec seed, request
//! uid)` — no wall clock, no global RNG. [`HostPool`] models one host's
//! connection limit: up to `conn_limit` requests are in service at once,
//! the rest wait FIFO, which is what turns overload into queueing delay
//! the latency histograms can see.

use std::collections::VecDeque;
use std::time::Duration;

use redlight_net::transport::SimSpec;

/// splitmix64-style mixer (same construction the fault injector uses), so
/// jitter draws are uniform, seedable, and stable across platforms.
pub(crate) fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic service-time model over a [`SimSpec`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceModel {
    spec: SimSpec,
}

impl ServiceModel {
    /// A model with the given parameters.
    pub fn new(spec: SimSpec) -> Self {
        ServiceModel { spec }
    }

    /// The parameters.
    pub fn spec(&self) -> &SimSpec {
        &self.spec
    }

    /// Service time of one successful response: `base + per_kbyte ·
    /// ⌈bytes/KiB⌉`, jittered ±`jitter_pm`‰ by a pure function of
    /// `(spec seed, uid)`.
    pub fn service_time(&self, body_bytes: u64, uid: u64) -> Duration {
        let kib = body_bytes.div_ceil(1024);
        let raw = self.spec.base_service + self.spec.per_kbyte * (kib as u32);
        self.jitter(raw, uid)
    }

    /// Time burned on an unreachable host (connect failure), jittered.
    pub fn connect_fail_time(&self, uid: u64) -> Duration {
        self.jitter(self.spec.connect_fail, uid)
    }

    /// Time a stalled request holds the client: the full timeout budget
    /// (no jitter — the budget is the crawler's, not the server's).
    pub fn timeout_time(&self) -> Duration {
        self.spec.timeout
    }

    fn jitter(&self, d: Duration, uid: u64) -> Duration {
        if self.spec.jitter_pm == 0 {
            return d;
        }
        // Draw in [-jitter_pm, +jitter_pm] per-mille of the duration.
        let span = 2 * self.spec.jitter_pm as u64 + 1;
        let draw = (mix(self.spec.seed, uid) % span) as i64 - self.spec.jitter_pm as i64;
        let nanos = d.as_nanos() as i64;
        Duration::from_nanos((nanos + nanos * draw / 1000).max(0) as u64)
    }
}

/// One host's connection pool: `limit` concurrent services, FIFO queueing
/// beyond that. The pool is a pure token mechanism — it holds whatever
/// request token the workload uses and never inspects it.
#[derive(Debug)]
pub struct HostPool<T> {
    limit: usize,
    in_service: usize,
    waiting: VecDeque<T>,
    peak_waiting: usize,
}

impl<T> HostPool<T> {
    /// A pool serving up to `limit` requests at once (`0` clamps to 1).
    pub fn new(limit: u32) -> Self {
        HostPool {
            limit: (limit as usize).max(1),
            in_service: 0,
            waiting: VecDeque::new(),
            peak_waiting: 0,
        }
    }

    /// Offers a request. When a connection slot is free it is taken and the
    /// token is handed back — the caller starts service now. Otherwise the
    /// token joins the FIFO queue and `None` says "wait".
    pub fn admit(&mut self, token: T) -> Option<T> {
        if self.in_service < self.limit {
            self.in_service += 1;
            Some(token)
        } else {
            self.waiting.push_back(token);
            self.peak_waiting = self.peak_waiting.max(self.waiting.len());
            None
        }
    }

    /// Completes one in-service request, freeing its slot. When a request
    /// was waiting, the slot is immediately re-taken and that token is
    /// returned — the caller starts its service now.
    pub fn complete(&mut self) -> Option<T> {
        debug_assert!(self.in_service > 0, "complete without admit");
        match self.waiting.pop_front() {
            Some(next) => Some(next),
            None => {
                self.in_service -= 1;
                None
            }
        }
    }

    /// Requests currently in service.
    pub fn in_service(&self) -> usize {
        self.in_service
    }

    /// Requests currently queued.
    pub fn waiting(&self) -> usize {
        self.waiting.len()
    }

    /// Deepest the FIFO queue has ever been.
    pub fn peak_waiting(&self) -> usize {
        self.peak_waiting
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_scales_with_body_and_replays() {
        let model = ServiceModel::new(SimSpec {
            jitter_pm: 0,
            ..SimSpec::default()
        });
        let small = model.service_time(100, 1);
        let large = model.service_time(64 * 1024, 1);
        assert!(large > small);
        assert_eq!(
            small,
            Duration::from_millis(2) + Duration::from_micros(20),
            "base + 1 KiB"
        );
        // Jittered draws replay exactly and stay within the band.
        let jittered = ServiceModel::new(SimSpec::default());
        for uid in 0..200 {
            let a = jittered.service_time(4096, uid);
            let b = jittered.service_time(4096, uid);
            assert_eq!(a, b, "same uid must draw the same jitter");
            let raw = Duration::from_millis(2) + Duration::from_micros(80);
            let band = raw.mul_f64(0.11);
            assert!(a >= raw - band && a <= raw + band, "{a:?} outside ±11%");
        }
    }

    #[test]
    fn pool_admits_up_to_limit_then_queues_fifo() {
        let mut pool: HostPool<u32> = HostPool::new(2);
        assert_eq!(pool.admit(1), Some(1));
        assert_eq!(pool.admit(2), Some(2));
        assert_eq!(pool.admit(3), None);
        assert_eq!(pool.admit(4), None);
        assert_eq!((pool.in_service(), pool.waiting()), (2, 2));
        // Completions hand slots to waiters in arrival order.
        assert_eq!(pool.complete(), Some(3));
        assert_eq!(pool.complete(), Some(4));
        assert_eq!(pool.complete(), None);
        assert_eq!(pool.complete(), None);
        assert_eq!((pool.in_service(), pool.waiting()), (0, 0));
        assert_eq!(pool.peak_waiting(), 2);
    }
}
