//! The traffic workload: a seeded population of visitors walking the porn
//! web under the simulated clock.
//!
//! The generator first *harvests* one page template per reachable porn
//! site — a single real [`Browser`] visit through the bare [`WebServer`]
//! yields the document plus its third-party fan-out, so the workload's
//! request mix is the websim ecosystem's, not an invented one. It then
//! runs two actors over the kernel:
//!
//! * **LoadGen** (the client) owns every in-flight session: seeded
//!   arrivals, a popularity-weighted site choice, one-to-three page walks
//!   with dwell time between pages, document retries consuming real
//!   backoff on the logical clock.
//! * **HostFleet** (the hosts) owns one [`HostPool`] per distinct host:
//!   connection limits, FIFO queueing, per-request service times from the
//!   [`ServiceModel`], and fault draws from the *same* cumulative
//!   [`FaultSpec`] distribution the synchronous `FaultTransport` uses.
//!
//! Everything measurable flows through `obs`: counters and latency
//! histograms on the shared [`Registry`], batch spans on the `traffic`
//! tracer shard. All quantities in the final [`TrafficReport`] are
//! logical, so the rendered report is byte-identical across runs of the
//! same seed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use redlight_browser::Browser;
use redlight_net::geoip::Country;
use redlight_net::http::ResourceKind;
use redlight_net::transport::{BrowserKind, Fault, FaultSpec, NetProfile, SimSpec};
use redlight_net::url::Url;
use redlight_obs::{
    Counter, Gauge, Histogram, ObsContext, Registry, SloEvent, SloTracker, Timeline, Tracer,
};
use redlight_rankings::PopularityTier;
use redlight_report::figure::{self, Series};
use redlight_report::table::{fmt_count, Table};
use redlight_websim::{server::WebServer, World, WorldConfig};

use crate::flight::{FlightEvent, FlightKind, FlightRecorder};
use crate::kernel::{Actor, ActorId, ActorSystem, Outbox};
use crate::queue::SimTime;
use crate::service::{mix, HostPool, ServiceModel};

/// Sub-resources kept per page template (beyond the document itself).
const MAX_SUBS: usize = 12;

/// Draw-stream salts: each stochastic choice mixes its own salt so the
/// streams are independent functions of `(seed, key)`.
mod salt {
    pub const GAP: u64 = 0x0067_6170;
    pub const PAGES: u64 = 0x0070_6167_6573;
    pub const SITE: u64 = 0x7369_7465;
    pub const DWELL: u64 = 0x0064_7765_6c6c;
    pub const WEIGHT: u64 = 0x7765_6967_6874;
    pub const BYTES: u64 = 0x0062_7974_6573;
    pub const FAULT: u64 = 0x0066_6175_6c74;
    pub const PERSIST: u64 = 0x7065_7273;
}

fn draw(seed: u64, s: u64, key: u64) -> u64 {
    mix(mix(seed, s), key)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Configuration of one traffic run.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Visitor sessions to simulate.
    pub sessions: u64,
    /// Workload seed: arrivals, site choices, page counts, dwell, faults.
    pub seed: u64,
    /// The web the visitors browse.
    pub world: WorldConfig,
    /// Network weather; `net.sim` supplies the service model (defaulted
    /// when absent) and `net.faults` the fault mix.
    pub net: NetProfile,
    /// Mean gap between session arrivals (uniform on `[0, 2·mean)`).
    pub mean_interarrival: Duration,
    /// Sessions per tracer batch span.
    pub span_batch: u64,
    /// Windowed timeline telemetry; `None` (the default) runs the bare
    /// kernel with no tick hook installed.
    pub timeline: Option<TimelineSpec>,
}

impl TrafficConfig {
    /// Defaults: tiny world, sim profile, 2 ms mean inter-arrival,
    /// 10k-session span batches, no timeline.
    pub fn new(sessions: u64) -> Self {
        TrafficConfig {
            sessions,
            seed: 2019,
            world: WorldConfig::tiny(2019),
            net: NetProfile::default().with_sim(SimSpec::default()),
            mean_interarrival: Duration::from_millis(2),
            span_batch: 10_000,
            timeline: None,
        }
    }
}

/// Configuration of the timeline telemetry a traffic run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSpec {
    /// Logical width of one timeline window.
    pub window: Duration,
    /// Flight-recorder ring capacity (recent kernel events kept).
    pub flight_capacity: usize,
    /// Flight snapshots kept; later SLO trips are counted, not stored.
    pub max_freezes: usize,
}

impl Default for TimelineSpec {
    fn default() -> Self {
        TimelineSpec {
            window: Duration::from_secs(1),
            flight_capacity: 96,
            max_freezes: 4,
        }
    }
}

impl TimelineSpec {
    /// A spec with the given window width and default flight settings.
    pub fn with_window(window: Duration) -> Self {
        TimelineSpec {
            window,
            ..TimelineSpec::default()
        }
    }
}

/// One request of a harvested page template.
#[derive(Debug, Clone, Copy)]
struct ReqTemplate {
    host: u32,
    bytes: u32,
}

/// One site's harvested page: the document plus its third-party fan-out.
#[derive(Debug)]
struct SiteTemplate {
    tier: u8,
    doc: ReqTemplate,
    subs: Vec<ReqTemplate>,
}

/// The harvested workload universe.
struct Universe {
    templates: Vec<SiteTemplate>,
    /// Cumulative popularity weights, parallel to `templates`.
    cum_weights: Vec<u64>,
    total_weight: u64,
    hosts: usize,
}

/// Harvests one page template per reachable porn site by really visiting
/// it through the bare server, then weights sites by popularity tier.
fn harvest(world: &World, seed: u64) -> Universe {
    let ctx = Browser::context_for(world, Country::Usa, BrowserKind::Selenium);
    let mut browser = Browser::with_transport(Box::new(WebServer::new(world)), ctx);
    let mut host_ids: HashMap<String, u32> = HashMap::new();
    let intern = |host: &str, ids: &mut HashMap<String, u32>| -> u32 {
        let next = ids.len() as u32;
        *ids.entry(host.to_owned()).or_insert(next)
    };

    let mut templates = Vec::new();
    let mut cum_weights = Vec::new();
    let mut total_weight = 0u64;
    for (idx, site) in world.sites.iter().enumerate() {
        if !site.is_porn() || site.unresponsive || site.blocked_in.contains(&Country::Usa) {
            continue;
        }
        let Ok(url) = Url::parse(&format!("https://{}/", site.domain)) else {
            continue;
        };
        let visit = browser.visit(&url);
        if !visit.success {
            continue;
        }
        let answered: Vec<_> = visit
            .requests
            .iter()
            .filter(|r| r.status.is_some())
            .collect();
        let Some(doc_req) = answered.first() else {
            continue;
        };
        let doc = ReqTemplate {
            host: intern(doc_req.url.host().as_str(), &mut host_ids),
            bytes: visit.dom_html.len().max(1024) as u32,
        };
        let subs = answered[1..]
            .iter()
            .take(MAX_SUBS)
            .map(|r| ReqTemplate {
                host: intern(r.url.host().as_str(), &mut host_ids),
                bytes: synth_bytes(
                    r.kind,
                    hash_str(r.url.host().as_str()) ^ hash_str(r.url.path()),
                ),
            })
            .collect();
        let tier = tier_index(site.tier);
        // Popularity-tier base weight with deterministic intra-tier
        // variation: tiers are roughly zipf-spaced, sites within a tier
        // vary ±2× around the base.
        let base = [420u64, 120, 30, 6][tier as usize];
        let weight = base + draw(seed, salt::WEIGHT, idx as u64) % base;
        total_weight += weight;
        cum_weights.push(total_weight);
        templates.push(SiteTemplate { tier, doc, subs });
    }
    Universe {
        templates,
        cum_weights,
        total_weight,
        hosts: host_ids.len(),
    }
}

fn tier_index(tier: PopularityTier) -> u8 {
    PopularityTier::ALL
        .iter()
        .position(|t| *t == tier)
        .unwrap_or(3) as u8
}

/// Synthesized body size for a sub-resource: the browser's request log
/// has no transfer sizes, so sizes are a pure function of the URL, scaled
/// by resource kind.
fn synth_bytes(kind: ResourceKind, h: u64) -> u32 {
    let (base, span) = match kind {
        ResourceKind::Document | ResourceKind::Frame => (8 * 1024, 56 * 1024),
        ResourceKind::Script => (8 * 1024, 64 * 1024),
        ResourceKind::Image => (4 * 1024, 36 * 1024),
        ResourceKind::Stylesheet => (2 * 1024, 14 * 1024),
        ResourceKind::Xhr | ResourceKind::Beacon | ResourceKind::Other => (300, 1_700),
    };
    base + (mix(salt::BYTES, h) % span) as u32
}

/// One in-flight request token, passed client → fleet → back.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    session: u32,
    host: u32,
    bytes: u32,
    tier: u8,
    doc: bool,
    attempt: u8,
    /// Service-jitter uid (fresh per attempt).
    uid: u64,
    /// Fault identity (stable across attempts of the same request).
    fkey: u64,
    enqueued: SimTime,
}

/// The traffic event alphabet.
enum Ev {
    /// A new session arrives at the load generator.
    Arrive,
    /// A session's dwell ended; walk the next page.
    NextPage { session: u32 },
    /// A request reaches the host fleet.
    Request { t: Ticket },
    /// A host finished serving (self-addressed by the fleet).
    Served { t: Ticket, ok: bool },
    /// The fleet reports an outcome back to the client.
    Done {
        session: u32,
        doc: bool,
        ok: bool,
        attempt: u8,
    },
}

/// Shared registry handles; cloned into both actors, read by the report.
#[derive(Clone)]
struct Hooks {
    sessions: Counter,
    sessions_done: Counter,
    sessions_failed: Counter,
    pages: Counter,
    requests: Counter,
    requests_failed: Counter,
    retries: Counter,
    faults: Counter,
    backoff_ns: Counter,
    request_us: Histogram,
    page_us: Histogram,
    session_us: Histogram,
    /// Sessions currently in flight (gauge, for the timeline).
    in_flight: Gauge,
    /// Requests currently queued behind host connection limits.
    queue_depth: Gauge,
    /// Deepest queue seen in the current timeline window (published at
    /// window close from [`Peaks::window_peak_queue`]).
    queue_peak: Gauge,
    tier_sessions: Vec<Counter>,
    tier_requests: Vec<Counter>,
    tier_request_us: Vec<Histogram>,
}

impl Hooks {
    fn new(registry: &Registry) -> Self {
        let tier = |stem: &str| {
            PopularityTier::ALL
                .iter()
                .enumerate()
                .map(|(i, _)| format!("traffic.{stem}.tier{i}"))
                .collect::<Vec<_>>()
        };
        Hooks {
            sessions: registry.counter("traffic.sessions"),
            sessions_done: registry.counter("traffic.sessions_completed"),
            sessions_failed: registry.counter("traffic.sessions_failed"),
            pages: registry.counter("traffic.pages"),
            requests: registry.counter("traffic.requests"),
            requests_failed: registry.counter("traffic.requests_failed"),
            retries: registry.counter("traffic.retries"),
            faults: registry.counter("traffic.faults_injected"),
            backoff_ns: registry.counter("traffic.backoff_logical_ns"),
            request_us: registry.histogram("traffic.request_us"),
            page_us: registry.histogram("traffic.page_us"),
            session_us: registry.histogram("traffic.session_us"),
            in_flight: registry.gauge("traffic.in_flight"),
            queue_depth: registry.gauge("traffic.queue_depth"),
            queue_peak: registry.gauge("traffic.queue_peak"),
            tier_sessions: tier("sessions")
                .iter()
                .map(|n| registry.counter(n))
                .collect(),
            tier_requests: tier("requests")
                .iter()
                .map(|n| registry.counter(n))
                .collect(),
            tier_request_us: tier("request_us")
                .iter()
                .map(|n| registry.histogram(n))
                .collect(),
        }
    }
}

/// Concurrency peaks (single-threaded kernel state, shared via `Rc`).
#[derive(Debug, Default)]
struct Peaks {
    in_flight: u64,
    peak_in_flight: u64,
    peak_queue: usize,
    /// Deepest queue seen since the current timeline window opened; reset
    /// by the window sampler, untouched on bare runs.
    window_peak_queue: usize,
}

/// One visitor session's live state.
#[derive(Debug, Clone, Copy, Default)]
struct SessionSlot {
    sid: u64,
    site: u32,
    pages_done: u8,
    pages_total: u8,
    pending_subs: u16,
    started: SimTime,
    page_started: SimTime,
}

/// The client actor: owns every in-flight session.
struct LoadGen {
    me: ActorId,
    fleet: ActorId,
    target: u64,
    seed: u64,
    fault_seed: u64,
    mean_gap_ns: u64,
    span_batch: u64,
    retry_max: u32,
    retry_backoff: Vec<Duration>,
    universe: Rc<Universe>,
    slots: Vec<SessionSlot>,
    free: Vec<u32>,
    next_session: u64,
    finished: u64,
    next_uid: u64,
    hooks: Hooks,
    peaks: Rc<RefCell<Peaks>>,
    tracer: Tracer,
    batch_open: bool,
    /// Flight ring, shared with the fleet; `None` on bare runs.
    flight: Option<Rc<RefCell<FlightRecorder>>>,
}

impl LoadGen {
    fn flight_note(&self, at: SimTime, kind: FlightKind, slot: u32, attempt: u8) {
        if let Some(rec) = &self.flight {
            rec.borrow_mut().record(FlightEvent {
                at,
                kind,
                slot,
                host: u32::MAX,
                attempt,
            });
        }
    }

    fn backoff_before(&self, attempt: u32) -> Duration {
        // Materialized schedule (the policy itself lives in net); index 0
        // is attempt 2's pause.
        self.retry_backoff
            .get((attempt as usize).saturating_sub(2))
            .copied()
            .unwrap_or_default()
    }

    fn send_doc(&mut self, slot: u32, attempt: u8, delay: Duration, out: &mut Outbox<'_, Ev>) {
        let sess = self.slots[slot as usize];
        let t = &self.universe.templates[sess.site as usize];
        let uid = self.next_uid;
        self.next_uid += 1;
        let fkey = draw(
            self.fault_seed,
            salt::FAULT,
            mix(sess.sid, 0x1_0000 + sess.pages_done as u64),
        );
        out.send(
            self.fleet,
            delay,
            Ev::Request {
                t: Ticket {
                    session: slot,
                    host: t.doc.host,
                    bytes: t.doc.bytes,
                    tier: t.tier,
                    doc: true,
                    attempt,
                    uid,
                    fkey,
                    enqueued: SimTime::ZERO,
                },
            },
        );
    }

    fn send_subs(&mut self, slot: u32, out: &mut Outbox<'_, Ev>) -> u16 {
        let sess = self.slots[slot as usize];
        let t = &self.universe.templates[sess.site as usize];
        let subs: Vec<ReqTemplate> = t.subs.clone();
        let tier = t.tier;
        for (i, sub) in subs.iter().enumerate() {
            let uid = self.next_uid;
            self.next_uid += 1;
            let fkey = draw(
                self.fault_seed,
                salt::FAULT,
                mix(
                    sess.sid,
                    0x2_0000 + ((sess.pages_done as u64) << 8) + i as u64,
                ),
            );
            out.send(
                self.fleet,
                Duration::ZERO,
                Ev::Request {
                    t: Ticket {
                        session: slot,
                        host: sub.host,
                        bytes: sub.bytes,
                        tier,
                        doc: false,
                        attempt: 1,
                        uid,
                        fkey,
                        enqueued: SimTime::ZERO,
                    },
                },
            );
        }
        subs.len() as u16
    }

    fn page_done(&mut self, slot: u32, now: SimTime, out: &mut Outbox<'_, Ev>) {
        self.hooks.pages.inc();
        let sess = &mut self.slots[slot as usize];
        self.hooks
            .page_us
            .record(now.since(sess.page_started).as_micros() as u64);
        sess.pages_done += 1;
        if sess.pages_done < sess.pages_total {
            let dwell = Duration::from_secs(1)
                + Duration::from_nanos(
                    draw(
                        self.seed,
                        salt::DWELL,
                        mix(sess.sid, sess.pages_done as u64),
                    ) % 2_000_000_000,
                );
            out.send(self.me, dwell, Ev::NextPage { session: slot });
        } else {
            self.hooks.sessions_done.inc();
            self.hooks
                .session_us
                .record(now.since(sess.started).as_micros() as u64);
            self.teardown(slot);
        }
    }

    fn teardown(&mut self, slot: u32) {
        self.free.push(slot);
        self.finished += 1;
        self.hooks.in_flight.add(-1);
        let mut peaks = self.peaks.borrow_mut();
        peaks.in_flight -= 1;
        drop(peaks);
        if self.finished == self.target && self.batch_open {
            self.tracer.attr("last_batch", true);
            self.tracer.close();
            self.batch_open = false;
        }
    }
}

impl Actor<Ev> for LoadGen {
    fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<'_, Ev>) {
        match event {
            Ev::Arrive => {
                let sid = self.next_session;
                self.next_session += 1;
                if sid.is_multiple_of(self.span_batch) {
                    if self.batch_open {
                        self.tracer.close();
                    }
                    self.tracer
                        .open(&format!("sessions.{}", sid / self.span_batch));
                    self.tracer.attr("first_session", sid);
                    self.batch_open = true;
                }
                let w = draw(self.seed, salt::SITE, sid) % self.universe.total_weight;
                let site = self.universe.cum_weights.partition_point(|&c| c <= w) as u32;
                let pages = 1 + (draw(self.seed, salt::PAGES, sid) % 3) as u8;
                let slot = self.free.pop().unwrap_or_else(|| {
                    self.slots.push(SessionSlot::default());
                    (self.slots.len() - 1) as u32
                });
                self.slots[slot as usize] = SessionSlot {
                    sid,
                    site,
                    pages_done: 0,
                    pages_total: pages,
                    pending_subs: 0,
                    started: now,
                    page_started: now,
                };
                self.hooks.sessions.inc();
                self.hooks.tier_sessions[self.universe.templates[site as usize].tier as usize]
                    .inc();
                self.hooks.in_flight.add(1);
                self.flight_note(now, FlightKind::Arrive, slot, 0);
                {
                    let mut peaks = self.peaks.borrow_mut();
                    peaks.in_flight += 1;
                    peaks.peak_in_flight = peaks.peak_in_flight.max(peaks.in_flight);
                }
                self.send_doc(slot, 1, Duration::ZERO, out);
                if self.next_session < self.target {
                    let gap = draw(self.seed, salt::GAP, self.next_session)
                        % (2 * self.mean_gap_ns).max(1);
                    out.send(self.me, Duration::from_nanos(gap), Ev::Arrive);
                }
            }
            Ev::NextPage { session } => {
                self.slots[session as usize].page_started = now;
                self.send_doc(session, 1, Duration::ZERO, out);
            }
            Ev::Done {
                session,
                doc,
                ok,
                attempt,
            } => {
                if doc {
                    if ok {
                        let subs = self.send_subs(session, out);
                        self.slots[session as usize].pending_subs = subs;
                        if subs == 0 {
                            self.page_done(session, now, out);
                        }
                    } else if (attempt as u32) < self.retry_max {
                        // The retry consumes its backoff as logical delay
                        // before the request is re-issued — recorded and
                        // elapsed time agree by construction.
                        let pause = self.backoff_before(attempt as u32 + 1);
                        self.hooks.retries.inc();
                        self.hooks.backoff_ns.add(pause.as_nanos() as u64);
                        self.flight_note(now, FlightKind::Retry, session, attempt + 1);
                        self.send_doc(session, attempt + 1, pause, out);
                    } else {
                        self.hooks.sessions_failed.inc();
                        self.flight_note(now, FlightKind::SessionFailed, session, attempt);
                        self.teardown(session);
                    }
                } else {
                    let sess = &mut self.slots[session as usize];
                    sess.pending_subs -= 1;
                    if sess.pending_subs == 0 {
                        self.page_done(session, now, out);
                    }
                }
            }
            Ev::Request { .. } | Ev::Served { .. } => unreachable!("fleet-addressed event"),
        }
    }
}

/// The host actor: every distinct host's connection pool and fault dice.
struct HostFleet {
    me: ActorId,
    client: ActorId,
    pools: Vec<HostPool<Ticket>>,
    model: ServiceModel,
    faults: Option<FaultSpec>,
    fault_seed: u64,
    hooks: Hooks,
    peaks: Rc<RefCell<Peaks>>,
    /// Flight ring, shared with the client; `None` on bare runs.
    flight: Option<Rc<RefCell<FlightRecorder>>>,
}

impl HostFleet {
    fn flight_note(&self, at: SimTime, kind: FlightKind, t: &Ticket) {
        if let Some(rec) = &self.flight {
            rec.borrow_mut().record(FlightEvent {
                at,
                kind,
                slot: t.session,
                host: t.host,
                attempt: t.attempt,
            });
        }
    }

    /// Decides a request's fate and its service duration. Fault identity
    /// is the ticket's `fkey`, so retries of the same request re-roll
    /// persistence exactly like `FaultTransport` does.
    fn outcome(&self, t: &Ticket) -> (bool, Duration, bool) {
        if let Some(spec) = self.faults {
            let roll = (draw(self.fault_seed, salt::FAULT, t.fkey) % 1000) as u16;
            if let Some(fault) = spec.classify(roll) {
                let persistence = if spec.transient_attempts == 0 {
                    u32::MAX
                } else {
                    1 + (draw(self.fault_seed, salt::PERSIST, t.fkey)
                        % spec.transient_attempts as u64) as u32
                };
                if (t.attempt as u32) <= persistence {
                    return match fault {
                        Fault::Dns | Fault::Reset => {
                            (false, self.model.connect_fail_time(t.uid), true)
                        }
                        Fault::Stall => (false, self.model.timeout_time(), true),
                        Fault::ServerError => (false, self.model.service_time(1024, t.uid), true),
                        Fault::Truncate => (
                            true,
                            self.model.service_time(t.bytes as u64 / 2, t.uid),
                            true,
                        ),
                    };
                }
            }
        }
        (true, self.model.service_time(t.bytes as u64, t.uid), false)
    }

    fn start(&mut self, t: Ticket, out: &mut Outbox<'_, Ev>) {
        let (ok, service, faulted) = self.outcome(&t);
        if faulted {
            self.hooks.faults.inc();
            self.flight_note(out.now(), FlightKind::Fault, &t);
        }
        out.send(self.me, service, Ev::Served { t, ok });
    }
}

impl Actor<Ev> for HostFleet {
    fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<'_, Ev>) {
        match event {
            Ev::Request { mut t } => {
                t.enqueued = now;
                self.hooks.requests.inc();
                self.hooks.tier_requests[t.tier as usize].inc();
                if self.flight.is_some() {
                    let kind = if t.doc {
                        FlightKind::DocRequest
                    } else {
                        FlightKind::SubRequest
                    };
                    self.flight_note(now, kind, &t);
                }
                let host = t.host as usize;
                if let Some(admitted) = self.pools[host].admit(t) {
                    self.start(admitted, out);
                } else {
                    self.hooks.queue_depth.add(1);
                    let depth = self.pools[host].waiting();
                    let mut peaks = self.peaks.borrow_mut();
                    peaks.peak_queue = peaks.peak_queue.max(depth);
                    peaks.window_peak_queue = peaks.window_peak_queue.max(depth);
                }
            }
            Ev::Served { t, ok } => {
                let us = now.since(t.enqueued).as_micros() as u64;
                self.hooks.request_us.record(us);
                self.hooks.tier_request_us[t.tier as usize].record(us);
                if !ok {
                    self.hooks.requests_failed.inc();
                    self.flight_note(now, FlightKind::Failed, &t);
                } else {
                    self.flight_note(now, FlightKind::Served, &t);
                }
                if let Some(next) = self.pools[t.host as usize].complete() {
                    self.hooks.queue_depth.add(-1);
                    self.start(next, out);
                }
                out.send(
                    self.client,
                    Duration::ZERO,
                    Ev::Done {
                        session: t.session,
                        doc: t.doc,
                        ok,
                        attempt: t.attempt,
                    },
                );
            }
            Ev::Arrive | Ev::NextPage { .. } | Ev::Done { .. } => {
                unreachable!("client-addressed event")
            }
        }
    }
}

/// The timeline runtime: the recorder plus SLO tracking and the flight
/// ring, driven from the kernel tick hook.
struct TimelineRt {
    tl: Timeline,
    tracker: SloTracker,
    flight: Rc<RefCell<FlightRecorder>>,
    req_ix: usize,
    fail_ix: usize,
    lat_ix: usize,
    queue_peak: Gauge,
    peaks: Rc<RefCell<Peaks>>,
}

impl TimelineRt {
    /// Publishes the closing window's peak queue depth, then resets the
    /// accumulator so the next window starts from the current depth.
    fn publish_queue_peak(&mut self) {
        let mut peaks = self.peaks.borrow_mut();
        self.queue_peak.set(peaks.window_peak_queue as i64);
        peaks.window_peak_queue = 0;
    }

    /// Feeds the most recent row to the SLO tracker; violations entered
    /// this window freeze the flight ring.
    fn post_window(&mut self) {
        let row = self.tl.windows().last().expect("a row was just closed");
        let (window, end_ns) = (row.index, row.end_ns);
        let total = row.counters[self.req_ix];
        let bad = row.counters[self.fail_ix];
        let p99 = row.hists[self.lat_ix].p99;
        let before = self.tracker.events().len();
        self.tracker
            .observe(window, total.saturating_sub(bad), bad, p99);
        for i in before..self.tracker.events().len() {
            let ev = self.tracker.events()[i];
            if ev.entered {
                self.flight.borrow_mut().freeze(
                    ev.kind.label(),
                    ev.window,
                    SimTime::from_nanos(end_ns),
                );
            }
        }
    }

    /// Closes the next full window.
    fn close_full_window(&mut self) {
        self.publish_queue_peak();
        self.tl.sample_window();
        self.post_window();
    }

    /// Seals the series with the final partial window at `end_ns` (full
    /// windows up to it were already closed by the tick hook).
    fn finish(&mut self, end_ns: u64) {
        while end_ns >= self.tl.next_boundary() {
            self.close_full_window();
        }
        self.publish_queue_peak();
        self.tl.finish(end_ns);
        self.post_window();
    }
}

/// Per-tier latency row of a [`TrafficReport`].
#[derive(Debug, Clone)]
pub struct TierRow {
    /// Tier label (`"0 — 1k"` …).
    pub label: String,
    /// Sessions that chose a site in this tier.
    pub sessions: u64,
    /// Requests issued on behalf of those sessions.
    pub requests: u64,
    /// Median request latency (µs, histogram bucket bound).
    pub p50_us: u64,
    /// Tail request latency (µs, histogram bucket bound).
    pub p99_us: u64,
}

/// Everything a traffic run measured. All fields except [`wall`]
/// (`TrafficReport::wall`) are logical and deterministic in the seed.
#[derive(Debug, Clone)]
pub struct TrafficReport {
    /// Sessions requested.
    pub sessions: u64,
    /// Sessions whose every page completed.
    pub completed: u64,
    /// Sessions abandoned after a document failed all retries.
    pub failed: u64,
    /// Pages fully loaded.
    pub pages: u64,
    /// Requests issued (documents + sub-resources, retries included).
    pub requests: u64,
    /// Requests that failed (after queueing/service).
    pub failed_requests: u64,
    /// Document retries issued.
    pub retries: u64,
    /// Faults injected by the fault plan.
    pub faults: u64,
    /// Logical time from first arrival to last completion.
    pub makespan: Duration,
    /// Total retry backoff consumed on the logical clock.
    pub backoff: Duration,
    /// Request latency percentiles (µs, inclusive bucket bounds).
    pub request_p50_us: u64,
    /// p95.
    pub request_p95_us: u64,
    /// p99.
    pub request_p99_us: u64,
    /// Page-load percentiles (µs).
    pub page_p50_us: u64,
    /// p99.
    pub page_p99_us: u64,
    /// Most sessions ever simultaneously in flight.
    pub peak_in_flight: u64,
    /// Deepest any host's FIFO connection queue got.
    pub peak_queue: usize,
    /// Distinct sites in the workload universe.
    pub sites: usize,
    /// Distinct hosts behind them.
    pub hosts: usize,
    /// Kernel events delivered.
    pub events: u64,
    /// Per-popularity-tier breakdown.
    pub tiers: Vec<TierRow>,
    /// Timeline telemetry, present when the run configured a
    /// [`TimelineSpec`].
    pub timeline: Option<TimelineReport>,
    /// Real wall time of the run — the one non-deterministic field; never
    /// rendered by [`TrafficReport::render`].
    pub wall: Duration,
}

/// The timeline side of a traffic run: the windowed series, the SLO
/// transitions and the flight-recorder outcome. All logical, all
/// deterministic in the seed.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// Window width the run sampled at.
    pub window: Duration,
    /// The sealed series recorder.
    pub timeline: Timeline,
    /// Every SLO transition, in window order.
    pub slo_events: Vec<SloEvent>,
    /// Flight snapshots frozen (≤ the spec's `max_freezes`).
    pub flight_freezes: usize,
    /// SLO trips past the snapshot cap (counted, not stored).
    pub flight_suppressed: u64,
}

impl TimelineReport {
    /// JSON-lines export: the timeline's `meta` + `window` lines, one
    /// `slo` line per transition, and a final `flight` summary line.
    pub fn json_lines(&self) -> String {
        let mut out = self.timeline.json_lines();
        for ev in &self.slo_events {
            out.push_str(&format!(
                "{{\"type\":\"slo\",\"window\":{},\"kind\":\"{}\",\"entered\":{},\
                 \"burn_x100\":{},\"value\":{}}}\n",
                ev.window,
                ev.kind.label(),
                ev.entered,
                ev.burn_x100,
                ev.value
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"flight\",\"freezes\":{},\"suppressed\":{}}}\n",
            self.flight_freezes, self.flight_suppressed
        ));
        out
    }

    /// CSV export of the windowed series (plot-ready; one row per window).
    pub fn csv(&self) -> String {
        self.timeline.csv()
    }

    /// Terminal sparkline summary of the headline series.
    pub fn render(&self) -> String {
        let tl = &self.timeline;
        let as_f64 = |v: Vec<u64>| v.into_iter().map(|x| x as f64).collect::<Vec<_>>();
        let series = vec![
            Series::new(
                "requests / window",
                as_f64(tl.counter_series("traffic.requests").unwrap_or_default()),
            ),
            Series::new(
                "request p99 (µs)",
                tl.hist_series("traffic.request_us")
                    .unwrap_or_default()
                    .iter()
                    .map(|h| h.p99 as f64)
                    .collect(),
            ),
            Series::new(
                "in-flight sessions",
                tl.gauge_series("traffic.in_flight")
                    .unwrap_or_default()
                    .iter()
                    .map(|&v| v as f64)
                    .collect(),
            ),
            Series::new(
                "peak host queue",
                tl.gauge_series("traffic.queue_peak")
                    .unwrap_or_default()
                    .iter()
                    .map(|&v| v as f64)
                    .collect(),
            ),
        ];
        let mut out = figure::render("Timeline", &series, 64);
        out.push_str(&format!(
            "windows: {} × {:.3} s   SLO transitions: {}   flight freezes: {} ({} suppressed)\n",
            tl.windows().len(),
            self.window.as_secs_f64(),
            self.slo_events.len(),
            self.flight_freezes,
            self.flight_suppressed,
        ));
        out
    }
}

impl TrafficReport {
    /// Completed-plus-failed sessions per logical second.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / secs
        }
    }

    /// Requests per logical second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.requests as f64 / secs
        }
    }

    /// The deterministic text report: logical quantities only.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Traffic workload ==\n");
        out.push_str(&format!(
            "sessions: {} ({} completed, {} failed)   pages: {}\n",
            fmt_count(self.sessions as usize),
            fmt_count(self.completed as usize),
            fmt_count(self.failed as usize),
            fmt_count(self.pages as usize),
        ));
        out.push_str(&format!(
            "requests: {} ({} failed, {} retried, {} faults injected)\n",
            fmt_count(self.requests as usize),
            fmt_count(self.failed_requests as usize),
            fmt_count(self.retries as usize),
            fmt_count(self.faults as usize),
        ));
        out.push_str(&format!(
            "logical makespan: {:.3} s   throughput: {:.1} sessions/s, {:.1} requests/s\n",
            self.makespan.as_secs_f64(),
            self.sessions_per_sec(),
            self.requests_per_sec(),
        ));
        out.push_str(&format!(
            "request latency (µs): p50 {}   p95 {}   p99 {}\n",
            fmt_count(self.request_p50_us as usize),
            fmt_count(self.request_p95_us as usize),
            fmt_count(self.request_p99_us as usize),
        ));
        out.push_str(&format!(
            "page load (µs):       p50 {}   p99 {}\n",
            fmt_count(self.page_p50_us as usize),
            fmt_count(self.page_p99_us as usize),
        ));
        out.push_str(&format!(
            "backoff consumed: {:.3} s   peak in-flight: {} sessions   peak host queue: {}\n",
            self.backoff.as_secs_f64(),
            fmt_count(self.peak_in_flight as usize),
            fmt_count(self.peak_queue),
        ));
        out.push_str(&format!(
            "universe: {} sites, {} hosts   kernel events: {}\n",
            fmt_count(self.sites),
            fmt_count(self.hosts),
            fmt_count(self.events as usize),
        ));
        out
    }

    /// The `--timings`-style "Traffic layer" table.
    pub fn render_table(&self) -> String {
        let mut table = Table::new(
            "Traffic layer",
            &["tier", "sessions", "requests", "p50 (µs)", "p99 (µs)"],
        )
        .align_right(&[1, 2, 3, 4]);
        for row in &self.tiers {
            table.row(&[
                row.label.clone(),
                fmt_count(row.sessions as usize),
                fmt_count(row.requests as usize),
                fmt_count(row.p50_us as usize),
                fmt_count(row.p99_us as usize),
            ]);
        }
        table.row(&[
            "all".to_owned(),
            fmt_count((self.completed + self.failed) as usize),
            fmt_count(self.requests as usize),
            fmt_count(self.request_p50_us as usize),
            fmt_count(self.request_p99_us as usize),
        ]);
        table.render()
    }
}

/// Runs the traffic workload to completion and reports what happened.
///
/// Memory stays bounded in the session count: live state is the in-flight
/// session set (arrival-rate × session-duration, a few thousand) plus the
/// pending-event heap — finished sessions recycle their slots.
pub fn run_traffic(config: &TrafficConfig, obs: &ObsContext) -> TrafficReport {
    let world = World::build(config.world.clone());
    let spec = config.net.sim.unwrap_or_default();
    let universe = Rc::new(harvest(&world, config.seed));
    assert!(
        universe.total_weight > 0,
        "traffic universe is empty: no reachable porn site in the world"
    );

    let hooks = Hooks::new(&obs.metrics);
    let peaks = Rc::new(RefCell::new(Peaks::default()));
    let mut tracer = obs.trace.tracer("traffic");
    tracer.open("traffic");
    tracer.attr("sessions", config.sessions);
    tracer.attr("sites", universe.templates.len() as u64);
    tracer.attr("hosts", universe.hosts as u64);

    // Timeline runtime: tracked series, SLO tracker, flight ring. Absent
    // on bare runs, whose kernel then has no tick hook at all.
    let timeline_rt: Option<Rc<RefCell<TimelineRt>>> = config.timeline.as_ref().map(|tspec| {
        let mut tl = Timeline::new(tspec.window);
        for name in [
            "traffic.sessions",
            "traffic.sessions_completed",
            "traffic.sessions_failed",
            "traffic.pages",
            "traffic.requests",
            "traffic.requests_failed",
            "traffic.retries",
            "traffic.faults_injected",
        ] {
            tl.track_counter(&obs.metrics, name);
        }
        for i in 0..PopularityTier::ALL.len() {
            tl.track_counter(&obs.metrics, &format!("traffic.requests.tier{i}"));
        }
        for name in [
            "traffic.in_flight",
            "traffic.queue_depth",
            "traffic.queue_peak",
        ] {
            tl.track_gauge(&obs.metrics, name);
        }
        tl.track_histogram(&obs.metrics, "traffic.request_us");
        let policy = config.net.slo.unwrap_or_default().policy();
        Rc::new(RefCell::new(TimelineRt {
            req_ix: tl.counter_index("traffic.requests").expect("tracked"),
            fail_ix: tl
                .counter_index("traffic.requests_failed")
                .expect("tracked"),
            lat_ix: tl.hist_index("traffic.request_us").expect("tracked"),
            tl,
            tracker: SloTracker::new(policy),
            flight: Rc::new(RefCell::new(FlightRecorder::new(
                tspec.flight_capacity,
                tspec.max_freezes,
            ))),
            queue_peak: hooks.queue_peak.clone(),
            peaks: Rc::clone(&peaks),
        }))
    });
    let flight_handle = timeline_rt
        .as_ref()
        .map(|rt| Rc::clone(&rt.borrow().flight));

    let (client_id, fleet_id) = (ActorId(0), ActorId(1));
    let retry = &config.net.retry;
    let retry_backoff: Vec<Duration> = (2..=retry.max_attempts.max(1))
        .map(|a| retry.backoff_before(a))
        .collect();
    let client = LoadGen {
        me: client_id,
        fleet: fleet_id,
        target: config.sessions,
        seed: config.seed,
        fault_seed: config.net.fault_seed,
        mean_gap_ns: config.mean_interarrival.as_nanos().max(1) as u64,
        span_batch: config.span_batch.max(1),
        retry_max: retry.max_attempts.max(1),
        retry_backoff,
        universe: Rc::clone(&universe),
        slots: Vec::new(),
        free: Vec::new(),
        next_session: 0,
        finished: 0,
        next_uid: 0,
        hooks: hooks.clone(),
        peaks: Rc::clone(&peaks),
        tracer,
        batch_open: false,
        flight: flight_handle.clone(),
    };
    let fleet = HostFleet {
        me: fleet_id,
        client: client_id,
        pools: (0..universe.hosts)
            .map(|_| HostPool::new(spec.conn_limit))
            .collect(),
        model: ServiceModel::new(spec),
        faults: config.net.faults,
        fault_seed: config.net.fault_seed,
        hooks: hooks.clone(),
        peaks: Rc::clone(&peaks),
        flight: flight_handle,
    };

    let mut sys = ActorSystem::new();
    assert_eq!(sys.add_actor(Box::new(client)), client_id);
    assert_eq!(sys.add_actor(Box::new(fleet)), fleet_id);
    if let Some(rt) = &timeline_rt {
        let rt = Rc::clone(rt);
        // Sampling happens with the clock advanced to the event's delivery
        // time but before dispatch, so a window's row covers exactly the
        // events strictly inside it — deterministic in the schedule.
        sys.set_tick_hook(move |now| {
            let now_ns = now.as_nanos();
            let mut rt = rt.borrow_mut();
            while now_ns >= rt.tl.next_boundary() {
                rt.close_full_window();
            }
        });
    }
    if config.sessions > 0 {
        sys.send(client_id, SimTime::ZERO, Ev::Arrive);
    }
    let wall_start = std::time::Instant::now();
    let (end, events) = sys.run();
    let wall = wall_start.elapsed();
    drop(sys); // commits the tracer shard and releases the tick hook

    let timeline = timeline_rt.map(|rt| {
        let mut rt = Rc::try_unwrap(rt)
            .ok()
            .expect("tick hook dropped with the kernel")
            .into_inner();
        rt.finish(end.as_nanos());
        // SLO transitions become journal spans; frozen flight snapshots
        // attach their causal neighborhoods next to them. Both tracers are
        // no-ops when spans are disabled.
        let mut slo_tracer = obs.trace.tracer("traffic.slo");
        for ev in rt.tracker.events() {
            slo_tracer.open(&format!("slo.{}", ev.kind.label()));
            slo_tracer.attr("window", ev.window);
            slo_tracer.attr("entered", ev.entered);
            slo_tracer.attr("burn_x100", ev.burn_x100);
            slo_tracer.attr("value", ev.value);
            slo_tracer.close();
        }
        slo_tracer.finish();
        let flight = rt.flight.borrow();
        flight.emit_spans(&obs.trace, "traffic.flight");
        TimelineReport {
            window: Duration::from_nanos(rt.tl.window_ns()),
            slo_events: rt.tracker.events().to_vec(),
            flight_freezes: flight.snapshots().len(),
            flight_suppressed: flight.suppressed(),
            timeline: rt.tl.clone(),
        }
    });

    let request_us = hooks.request_us.snapshot();
    let page_us = hooks.page_us.snapshot();
    let peaks = peaks.borrow();
    let tiers = PopularityTier::ALL
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let snap = hooks.tier_request_us[i].snapshot();
            TierRow {
                label: t.label().to_owned(),
                sessions: hooks.tier_sessions[i].get(),
                requests: hooks.tier_requests[i].get(),
                p50_us: snap.quantile(0.50),
                p99_us: snap.quantile(0.99),
            }
        })
        .collect();

    TrafficReport {
        sessions: config.sessions,
        completed: hooks.sessions_done.get(),
        failed: hooks.sessions_failed.get(),
        pages: hooks.pages.get(),
        requests: hooks.requests.get(),
        failed_requests: hooks.requests_failed.get(),
        retries: hooks.retries.get(),
        faults: hooks.faults.get(),
        makespan: end.as_duration(),
        backoff: Duration::from_nanos(hooks.backoff_ns.get()),
        request_p50_us: request_us.quantile(0.50),
        request_p95_us: request_us.quantile(0.95),
        request_p99_us: request_us.quantile(0.99),
        page_p50_us: page_us.quantile(0.50),
        page_p99_us: page_us.quantile(0.99),
        peak_in_flight: peaks.peak_in_flight,
        peak_queue: peaks.peak_queue,
        sites: universe.templates.len(),
        hosts: universe.hosts,
        events,
        tiers,
        timeline,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(sessions: u64) -> TrafficConfig {
        TrafficConfig {
            world: WorldConfig::tiny(7),
            ..TrafficConfig::new(sessions)
        }
    }

    #[test]
    fn accounting_balances_and_sessions_finish() {
        let obs = ObsContext::new();
        let report = run_traffic(&tiny_config(200), &obs);
        assert_eq!(report.completed + report.failed, 200);
        assert!(
            report.pages >= report.completed,
            "≥1 page per completed session"
        );
        assert!(report.requests > report.pages, "documents plus fan-out");
        assert_eq!(report.failed_requests, 0, "healthy default profile");
        assert_eq!(report.backoff, Duration::ZERO);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.request_p99_us >= report.request_p50_us);
        let tier_sessions: u64 = report.tiers.iter().map(|t| t.sessions).sum();
        assert_eq!(tier_sessions, 200);
    }

    #[test]
    fn same_seed_same_report_different_seed_diverges() {
        let a = run_traffic(&tiny_config(150), &ObsContext::new());
        let b = run_traffic(&tiny_config(150), &ObsContext::new());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render_table(), b.render_table());
        assert_eq!(a.events, b.events);
        let mut other = tiny_config(150);
        other.seed = 99;
        let c = run_traffic(&other, &ObsContext::new());
        assert_ne!(a.render(), c.render(), "seed must steer the workload");
    }

    #[test]
    fn faulty_weather_slows_and_fails_traffic() {
        let healthy = run_traffic(&tiny_config(150), &ObsContext::new());
        let mut flaky = tiny_config(150);
        flaky.net = NetProfile::named("flaky")
            .unwrap()
            .with_sim(SimSpec::default());
        let stormy = run_traffic(&flaky, &ObsContext::new());
        assert!(stormy.faults > 0);
        assert!(stormy.retries > 0, "doc faults must trigger retries");
        assert!(stormy.backoff > Duration::ZERO);
        assert!(
            stormy.makespan > healthy.makespan,
            "faults cost logical time: {:?} vs {:?}",
            stormy.makespan,
            healthy.makespan
        );
    }

    #[test]
    fn timeline_windows_sum_to_the_final_counters() {
        let mut config = tiny_config(200);
        config.timeline = Some(TimelineSpec::with_window(Duration::from_millis(250)));
        let report = run_traffic(&config, &ObsContext::new());
        let tl = report.timeline.as_ref().expect("timeline configured");
        assert!(tl.timeline.is_finished());
        assert!(!tl.timeline.windows().is_empty());
        let sum = |name: &str| -> u64 {
            tl.timeline
                .counter_series(name)
                .expect("tracked")
                .iter()
                .sum()
        };
        assert_eq!(sum("traffic.requests"), report.requests);
        assert_eq!(sum("traffic.sessions"), report.sessions);
        assert_eq!(sum("traffic.pages"), report.pages);
        // The report's own renders never change shape because a timeline
        // rode along.
        let bare = run_traffic(&tiny_config(200), &ObsContext::new());
        assert_eq!(bare.render(), report.render());
        assert_eq!(bare.render_table(), report.render_table());
    }

    #[test]
    fn timeline_flags_slo_violations_and_freezes_flights() {
        let mut config = tiny_config(400);
        config.net = NetProfile::named("flaky")
            .unwrap()
            .with_sim(SimSpec::default());
        // An unmeetable latency objective guarantees transitions.
        config.net.slo = Some(redlight_net::transport::SloSpec {
            latency_p99_us: 1,
            ..Default::default()
        });
        config.timeline = Some(TimelineSpec::with_window(Duration::from_millis(500)));
        let obs = ObsContext::new();
        let report = run_traffic(&config, &obs);
        let tl = report.timeline.as_ref().expect("timeline configured");
        assert!(
            tl.slo_events.iter().any(|e| e.entered),
            "1µs p99 objective must trip"
        );
        assert!(tl.flight_freezes > 0, "entering a violation freezes");
        let journal = obs.trace.journal();
        assert!(journal.find("slo.latency").is_some(), "SLO span exported");
        assert!(
            journal.find("flight.freeze.000").is_some(),
            "flight snapshot exported"
        );
        let lines = tl.json_lines();
        assert!(lines.contains("\"type\":\"slo\""));
        assert!(lines.contains("\"type\":\"flight\""));
        assert!(tl.render().contains("requests / window"));
    }
}
