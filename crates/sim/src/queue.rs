//! Logical time and the pending-event queue.
//!
//! [`SimTime`] is a nanosecond count since simulation start — no wall
//! clock anywhere. [`EventQueue`] is a binary heap keyed by `(time, seq)`:
//! the sequence number is assigned at schedule time, so two events
//! scheduled for the same instant always deliver in schedule order and
//! delivery order is a pure function of the schedule calls. Cancellation
//! leaves a tombstone that [`EventQueue::pop`] silently skips — a
//! cancelled event is never delivered.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::time::Duration;

/// A point in logical time: nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw nanoseconds.
    pub fn from_nanos(nanos: u64) -> SimTime {
        SimTime(nanos)
    }

    /// Raw nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// As a [`Duration`] since simulation start.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// This instant plus `d` (saturating; the simulation horizon is ~584
    /// logical years, far beyond any workload).
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64),
        )
    }

    /// Logical time elapsed since `earlier` (zero when `earlier` is later).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

/// Handle to one scheduled event, usable to cancel it before delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// Heap entry: ordered by `(time, seq)` so ties break by schedule order.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The pending-event set: a stable-order binary heap with cancellation.
///
/// Determinism contract: for a fixed sequence of `schedule`/`cancel`
/// calls, the sequence of `pop` results is identical across runs and
/// platforms — ordering depends only on `(time, seq)`, never on heap
/// internals, hashing, or allocation.
#[derive(Debug, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` for delivery at `at`. Events at the same instant
    /// deliver in the order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        EventId(seq)
    }

    /// Cancels a pending event. Returns `true` when the event was still
    /// pending (it will never be delivered), `false` when it was already
    /// delivered, cancelled, or never existed.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Pending iff it is still in the heap; probing the heap is O(n), so
        // track cancellations and let `pop` discard tombstones lazily. A
        // second cancel of the same id — or a cancel after delivery — is a
        // no-op reported as `false`.
        if self.cancelled.contains(&id.0) || !self.is_pending(id) {
            return false;
        }
        self.cancelled.insert(id.0);
        true
    }

    fn is_pending(&self, id: EventId) -> bool {
        self.heap.iter().any(|Reverse(e)| e.seq == id.0)
    }

    /// Delivers the next event: the pending `(time, seq)` minimum, skipping
    /// cancelled tombstones. Panics if time would run backwards (a kernel
    /// invariant, not a user-reachable state).
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            assert!(
                entry.at >= self.last_popped,
                "event queue delivered out of order: {:?} after {:?}",
                entry.at,
                self.last_popped
            );
            self.last_popped = entry.at;
            return Some((entry.at, EventId(entry.seq), entry.event));
        }
        None
    }

    /// Delivery time of the next (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no deliverable event remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_then_schedule_order() {
        let mut q = EventQueue::new();
        let t = |ms: u64| SimTime::from_nanos(ms * 1_000_000);
        q.schedule(t(5), "b");
        q.schedule(t(1), "a");
        q.schedule(t(5), "c");
        q.schedule(t(0), "zero");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec!["zero", "a", "b", "c"]);
    }

    #[test]
    fn cancellation_never_delivers() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(10), 'a');
        let b = q.schedule(SimTime::from_nanos(20), 'b');
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports not-pending");
        assert_eq!(q.len(), 1);
        let (_, id, ev) = q.pop().unwrap();
        assert_eq!((id, ev), (b, 'b'));
        assert!(!q.cancel(b), "cancel after delivery reports not-pending");
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_instant_ties_break_by_seq() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), 1);
        q.schedule(SimTime::from_nanos(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(2));
    }

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::ZERO.after(Duration::from_millis(3));
        assert_eq!(t.as_nanos(), 3_000_000);
        assert_eq!(t.since(SimTime::ZERO), Duration::from_millis(3));
        assert_eq!(SimTime::ZERO.since(t), Duration::ZERO, "saturates");
    }
}
