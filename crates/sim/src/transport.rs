//! Rehosting the synchronous fetch path on the simulated clock.
//!
//! [`SimTransport`] wraps a whole transport stack (server, fault injector,
//! meter) and charges every outcome's modeled cost to a [`SimClock`]:
//! responses cost their service time, unreachable hosts cost the connect
//! failure, and a stall — notably the ones `FaultTransport` injects —
//! costs the full timeout budget, so "the page load exceeded the crawler's
//! timeout" finally *takes* that long in logical time. Outcomes pass
//! through byte-identical, which is what makes a sim-hosted study render
//! exactly like the synchronous one.
//!
//! The crawler holds the cloneable [`SimHandle`] after boxing the stack
//! into the browser, advances the clock by its retry backoff between
//! attempts, and reads each visit's logical wall off the clock. A single
//! crawl session is sequential, so the host connection limits of the spec
//! never bind here — they shape the concurrent traffic workload
//! (`crate::traffic`), where many clients share the hosts.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use redlight_net::http::Request;
use redlight_net::transport::{ClientContext, FetchOutcome, SimSpec, Transport};

use crate::kernel::SimClock;
use crate::service::ServiceModel;

#[derive(Debug, Default)]
struct HandleState {
    backoff_nanos: u64,
    service_nanos: u64,
    requests: u64,
    next_uid: u64,
}

/// Shared handle onto a [`SimTransport`]'s clock and counters. Cloning
/// yields another view of the same simulation.
#[derive(Debug, Clone)]
pub struct SimHandle {
    clock: SimClock,
    model: ServiceModel,
    state: Arc<Mutex<HandleState>>,
}

impl SimHandle {
    /// A fresh simulation at logical time zero.
    pub fn new(spec: SimSpec) -> Self {
        SimHandle {
            clock: SimClock::new(),
            model: ServiceModel::new(spec),
            state: Arc::new(Mutex::new(HandleState::default())),
        }
    }

    /// Current logical time since the simulation started.
    pub fn now(&self) -> Duration {
        self.clock.now().as_duration()
    }

    /// The underlying clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Consumes retry backoff: advances the clock by `d` and accounts it,
    /// so recorded schedules and elapsed logical time can be compared
    /// exactly.
    pub fn consume_backoff(&self, d: Duration) {
        self.clock.advance(d);
        self.state.lock().expect("sim state").backoff_nanos += d.as_nanos() as u64;
    }

    /// Total backoff consumed so far.
    pub fn backoff_consumed(&self) -> Duration {
        Duration::from_nanos(self.state.lock().expect("sim state").backoff_nanos)
    }

    /// Total service/connect/timeout time charged by fetches so far.
    pub fn service_consumed(&self) -> Duration {
        Duration::from_nanos(self.state.lock().expect("sim state").service_nanos)
    }

    /// Requests charged so far.
    pub fn requests(&self) -> u64 {
        self.state.lock().expect("sim state").requests
    }

    fn charge(&self, elapsed: Duration) {
        self.clock.advance(elapsed);
        let mut state = self.state.lock().expect("sim state");
        state.service_nanos += elapsed.as_nanos() as u64;
        state.requests += 1;
    }

    fn next_uid(&self) -> u64 {
        let mut state = self.state.lock().expect("sim state");
        let uid = state.next_uid;
        state.next_uid += 1;
        uid
    }
}

/// The simulated-time decorator: outermost in the stack, charging each
/// outcome's modeled cost to the logical clock. Purely additive — the
/// outcome itself is returned untouched.
pub struct SimTransport<T> {
    inner: T,
    handle: SimHandle,
}

impl<T: Transport> SimTransport<T> {
    /// Wraps `inner`, charging time to `handle`'s clock.
    pub fn new(inner: T, handle: SimHandle) -> Self {
        SimTransport { inner, handle }
    }
}

impl<T: Transport> Transport for SimTransport<T> {
    fn fetch(&self, req: &Request, ctx: &ClientContext) -> FetchOutcome {
        let outcome = self.inner.fetch(req, ctx);
        let uid = self.handle.next_uid();
        let model = &self.handle.model;
        let elapsed = match &outcome {
            FetchOutcome::Response(resp) => model.service_time(resp.body.len() as u64, uid),
            FetchOutcome::Unreachable => model.connect_fail_time(uid),
            FetchOutcome::Timeout => model.timeout_time(),
        };
        self.handle.charge(elapsed);
        outcome
    }

    fn resolvable(&self, host: &str) -> bool {
        self.inner.resolvable(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redlight_net::geoip::Country;
    use redlight_net::http::{ResourceKind, Response, StatusCode};
    use redlight_net::transport::BrowserKind;
    use redlight_net::url::Url;
    use std::net::Ipv4Addr;

    enum Mode {
        Ok,
        Gone,
        Stall,
    }

    struct Fixed(Mode);

    impl Transport for Fixed {
        fn fetch(&self, _req: &Request, _ctx: &ClientContext) -> FetchOutcome {
            match self.0 {
                Mode::Ok => FetchOutcome::Response(Response::ok("text/html", "x".repeat(2048))),
                Mode::Gone => FetchOutcome::Unreachable,
                Mode::Stall => FetchOutcome::Timeout,
            }
        }
        fn resolvable(&self, _host: &str) -> bool {
            true
        }
    }

    fn ctx() -> ClientContext {
        ClientContext {
            country: Country::Spain,
            client_ip: Ipv4Addr::new(203, 0, 113, 9),
            session: 1,
            browser: BrowserKind::OpenWpm,
        }
    }

    fn req() -> Request {
        Request::get(
            Url::parse("https://a.example/").unwrap(),
            ResourceKind::Document,
        )
    }

    fn spec() -> SimSpec {
        SimSpec {
            jitter_pm: 0,
            ..SimSpec::default()
        }
    }

    #[test]
    fn responses_charge_service_time() {
        let handle = SimHandle::new(spec());
        let t = SimTransport::new(Fixed(Mode::Ok), handle.clone());
        let FetchOutcome::Response(resp) = t.fetch(&req(), &ctx()) else {
            panic!("passthrough");
        };
        assert_eq!(resp.status, StatusCode(200));
        // 2 KiB body: base 2 ms + 2 × 20 µs.
        assert_eq!(
            handle.now(),
            Duration::from_millis(2) + Duration::from_micros(40)
        );
        assert_eq!(handle.requests(), 1);
    }

    #[test]
    fn failures_charge_their_budgets() {
        let handle = SimHandle::new(spec());
        let t = SimTransport::new(Fixed(Mode::Gone), handle.clone());
        assert!(matches!(t.fetch(&req(), &ctx()), FetchOutcome::Unreachable));
        assert_eq!(handle.now(), Duration::from_millis(1));

        let handle = SimHandle::new(spec());
        let t = SimTransport::new(Fixed(Mode::Stall), handle.clone());
        assert!(matches!(t.fetch(&req(), &ctx()), FetchOutcome::Timeout));
        assert_eq!(handle.now(), Duration::from_secs(10), "full timeout budget");
    }

    #[test]
    fn backoff_consumption_is_accounted() {
        let handle = SimHandle::new(spec());
        handle.consume_backoff(Duration::from_millis(250));
        handle.consume_backoff(Duration::from_millis(1000));
        assert_eq!(handle.backoff_consumed(), Duration::from_millis(1250));
        assert_eq!(handle.now(), Duration::from_millis(1250));
        assert_eq!(handle.service_consumed(), Duration::ZERO);
    }
}
