//! The DB-first stage pipeline: plan → MeasurementDb → stages → report.

use redlight::core::stages::{self, AnalysisContext};
use redlight::crawler::db::CorpusLabel;
use redlight::net::geoip::Country;
use redlight::{Study, StudyConfig, World};

/// Splitting the monolith into collect + stages must not change a single
/// rendered byte: the summary is a pure function of the seed.
#[test]
fn same_seed_renders_identical_summaries() {
    let a = Study::run(StudyConfig::tiny(4242));
    let b = Study::run(StudyConfig::tiny(4242));
    assert_eq!(a.render_summary(), b.render_summary());
    // Timings differ between runs — which is exactly why they live in the
    // stage report and not in the summary.
    assert_eq!(a.stage_report.stages.len(), b.stage_report.stages.len());
}

/// The collection layer is deterministic too: two executions of the same
/// plan over the same world record identical tables.
#[test]
fn collect_db_is_deterministic() {
    let config = StudyConfig::tiny(99);
    let world = World::build(config.world.clone());
    let (db_a, _) = Study::collect_db(&world, &config);
    let (db_b, _) = Study::collect_db(&world, &config);

    assert_eq!(db_a.crawls().len(), db_b.crawls().len());
    for (x, y) in db_a.crawls().iter().zip(db_b.crawls()) {
        assert_eq!(x.country, y.country);
        assert_eq!(x.corpus, y.corpus);
        assert_eq!(x.client_ip, y.client_ip);
        assert_eq!(x.visits.len(), y.visits.len());
        for (vx, vy) in x.visits.iter().zip(&y.visits) {
            assert_eq!(vx.domain, vy.domain);
            assert_eq!(vx.visit.requests.len(), vy.visit.requests.len());
            assert_eq!(vx.visit.cookies.len(), vy.visit.cookies.len());
        }
    }
    assert_eq!(db_a.interactions().len(), db_b.interactions().len());
}

/// A full run's report names every registered stage exactly once, with a
/// nonzero input count, plus one timing per planned crawl.
#[test]
fn stage_report_covers_every_stage_once() {
    let results = Study::run(StudyConfig::tiny(321));
    let report = &results.stage_report;

    assert_eq!(report.stages.len(), stages::STAGES.len());
    for (timing, expected) in report.stages.iter().zip(stages::STAGES) {
        assert_eq!(timing.name, expected, "stages reported in paper order");
        assert!(
            timing.input_records > 0,
            "stage {} must consume records",
            timing.name
        );
    }

    // tiny: 4 OpenWPM crawls + 4 Selenium interaction crawls.
    assert_eq!(report.crawls.len(), 8);
    assert!(report.crawls.iter().all(|c| c.sites > 0));
    assert_eq!(
        report
            .crawls
            .iter()
            .filter(|c| c.crawler == "selenium")
            .count(),
        4
    );
    // The rendered instrumentation mentions every stage.
    let rendered = results.render_timings();
    for stage in stages::STAGES {
        assert!(rendered.contains(stage), "timings table lists {stage}");
    }
}

/// Running a stage subset over a shared DB reproduces the full run's
/// numbers — no analysis reads crawl data except through the DB.
#[test]
fn stage_subset_matches_full_run() {
    let config = StudyConfig::tiny(2024);
    let world = World::build(config.world.clone());
    let full = Study::run_on(&world, &config);

    let (db, _) = Study::collect_db(&world, &config);
    let ctx = AnalysisContext::build(&world, &config, &db);
    let selected = stages::expand_selection(&[
        "cookies".to_string(),
        "https".to_string(),
        "disclosure".to_string(),
    ])
    .expect("known stages");
    // disclosure pulls in its transitive dependencies.
    for dep in ["fingerprinting", "webrtc", "policies"] {
        assert!(selected.contains(dep), "{dep} auto-selected");
    }
    let (outputs, timings) = stages::run(&db, &ctx, &selected);
    assert_eq!(timings.len(), selected.len());

    let (cookie_stats, _) = outputs.cookies.expect("cookies ran");
    assert_eq!(cookie_stats.total_cookies, full.cookie_stats.total_cookies);
    let https = outputs.https.expect("https ran");
    assert_eq!(https.not_fully_https, full.https.not_fully_https);
    assert_eq!(
        outputs.disclosure.expect("disclosure ran"),
        full.disclosure_check
    );
    // Unselected stages stay empty.
    assert!(outputs.geo.is_none());
    assert!(outputs.age_gates.is_none());
}

/// Unknown stage names are rejected with the full menu.
#[test]
fn unknown_stage_is_an_error() {
    let err = stages::expand_selection(&["cokies".to_string()]).unwrap_err();
    assert!(err.contains("unknown stage 'cokies'"));
    assert!(err.contains("cookie-sync"), "error lists valid names");
}

/// The measurement DB indexes crawls by (country, corpus) and exposes
/// per-country views.
#[test]
fn measurement_db_accessors() {
    let config = StudyConfig::tiny(7);
    let world = World::build(config.world.clone());
    let (db, _) = Study::collect_db(&world, &config);

    let countries = db.countries();
    assert_eq!(
        countries,
        vec![Country::Usa, Country::Spain, Country::Russia]
    );
    assert_eq!(db.crawls_in(Country::Spain).count(), 2);
    assert_eq!(db.crawls_in(Country::Usa).count(), 1);
    let porn = db
        .crawl(Country::Spain, CorpusLabel::Porn)
        .expect("indexed");
    assert_eq!(porn.corpus, CorpusLabel::Porn);
    // The vantage IP rides on the record itself.
    assert!(!porn.client_ip.is_unspecified());
}
