//! Determinism and coverage guarantees of the observability subsystem:
//! the same study configuration and fault seed must produce byte-identical
//! journal exports and metrics snapshots across runs (spans are merged
//! from per-worker shards by shard name, never by arrival order), while
//! divergent fault seeds must visibly diverge in the retry counters.

use redlight::core::stages::STAGES;
use redlight::net::transport::NetProfile;
use redlight::obs::ObsContext;
use redlight::{Study, StudyConfig, World};

/// Runs the full tiny pipeline under an enabled observability context and
/// returns the context (journal + metrics) for inspection.
fn observed_run(world_seed: u64, net: NetProfile) -> ObsContext {
    let mut config = StudyConfig::tiny(world_seed);
    config.net = net;
    let world = World::build(config.world.clone());
    let obs = ObsContext::new();
    let _results = Study::run_on_observed(&world, &config, &obs);
    obs
}

#[test]
fn same_seed_produces_byte_identical_exports() {
    let net = NetProfile::named("flaky")
        .expect("flaky profile registered")
        .with_fault_seed(7);
    let a = observed_run(42, net.clone());
    let b = observed_run(42, net);

    let ja = a.trace.journal();
    let jb = b.trace.journal();
    assert_eq!(ja.json_lines(), jb.json_lines());
    assert_eq!(ja.chrome_trace(), jb.chrome_trace());

    // The deterministic metric surface (everything except wall-clock-unit
    // metrics) and its Prometheus rendering match exactly.
    assert_eq!(
        a.metrics.snapshot().deterministic(),
        b.metrics.snapshot().deterministic()
    );
    assert_eq!(
        a.metrics.snapshot().prometheus(),
        b.metrics.snapshot().prometheus()
    );
}

#[test]
fn divergent_fault_seeds_diverge_in_retry_counters() {
    let flaky = NetProfile::named("flaky").expect("flaky profile registered");
    let a = observed_run(42, flaky.clone().with_fault_seed(7));
    let b = observed_run(42, flaky.with_fault_seed(8));

    let ra = a.metrics.snapshot().counter("transport.retries");
    let rb = b.metrics.snapshot().counter("transport.retries");
    assert!(
        ra > 0 && rb > 0,
        "flaky runs retry at least once (got {ra} and {rb})"
    );
    assert_ne!(
        ra, rb,
        "different fault seeds must produce different network weather"
    );
}

#[test]
fn journal_covers_every_crawl_batch_and_stage() {
    let config = StudyConfig::tiny(42);
    let world = World::build(config.world.clone());
    let obs = ObsContext::new();
    let _results = Study::run_on_observed(&world, &config, &obs);
    let journal = obs.trace.journal();
    assert_eq!(journal.dropped, 0, "nothing hit the shard cap");

    // Layer roots.
    assert_eq!(journal.count_named("collect"), 1);
    assert_eq!(journal.count_named("analyze"), 1);
    assert_eq!(journal.count_named("corpus.compile"), 1);
    assert_eq!(journal.count_named("context.build"), 1);

    // Every planned crawl records exactly one span: the tiny plan covers
    // Spain (porn + regular), USA and Russia OpenWPM sweeps plus the four
    // gate-country Selenium crawls.
    for crawl in [
        "crawl.openwpm.es.porn",
        "crawl.openwpm.es.regular",
        "crawl.openwpm.us.porn",
        "crawl.openwpm.ru.porn",
        "crawl.selenium.es",
        "crawl.selenium.us",
        "crawl.selenium.gb",
        "crawl.selenium.ru",
    ] {
        assert_eq!(journal.count_named(crawl), 1, "{crawl} span recorded");
    }

    // Crawl spans hang under the collect root; visit batches under crawls.
    let collect_id = journal.find("collect").expect("collect root").id;
    let crawl_es = journal
        .find("crawl.openwpm.es.porn")
        .expect("main crawl span");
    assert_eq!(crawl_es.parent, collect_id);
    let batches: Vec<_> = journal
        .spans
        .iter()
        .filter(|s| s.name.starts_with("visits."))
        .collect();
    assert!(!batches.is_empty(), "visit batches recorded");
    let crawl_ids: Vec<u64> = journal
        .spans
        .iter()
        .filter(|s| s.name.starts_with("crawl."))
        .map(|s| s.id)
        .collect();
    assert!(batches.iter().all(|b| crawl_ids.contains(&b.parent)));

    // Every analysis stage records exactly one span, parented on the
    // analyze root.
    let analyze_id = journal.find("analyze").expect("analyze root").id;
    for stage in STAGES {
        let name = format!("stage.{stage}");
        let span = journal
            .spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} span recorded"));
        assert_eq!(span.parent, analyze_id, "{name} hangs under analyze");
    }

    // Chrome trace export stays balanced (one B and one E per span).
    let trace = journal.chrome_trace();
    let begins = trace.matches("\"ph\":\"B\"").count();
    let ends = trace.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, journal.len());
    assert_eq!(begins, ends);
}

#[test]
fn observed_results_match_unobserved_results() {
    // Observability must be a pure tap: the summary a journaled run
    // renders is byte-identical to the default path's.
    let config = StudyConfig::tiny(42);
    let world = World::build(config.world.clone());
    let plain = Study::run_on(&world, &config);
    let observed = Study::run_on_observed(&world, &config, &ObsContext::new());
    assert_eq!(plain.render_summary(), observed.render_summary());
}
