//! Property-based tests over the core data structures and parsers: nothing
//! crawled off the (simulated) web may ever panic the pipeline, and the
//! wire codecs must round-trip.

use proptest::prelude::*;

use redlight::net::codec;
use redlight::net::cookie::Cookie;
use redlight::net::psl;
use redlight::net::url::Url;
use redlight::text::{levenshtein, tfidf::TfIdfModel};

proptest! {
    #[test]
    fn base64_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let enc = codec::base64_encode(&data);
        prop_assert_eq!(codec::base64_decode(&enc).unwrap(), data.clone());
        let url_enc = codec::base64url_encode(&data);
        prop_assert_eq!(codec::base64url_decode(&url_enc).unwrap(), data);
    }

    #[test]
    fn base64_decoder_never_panics(s in ".{0,200}") {
        let _ = codec::base64_decode(&s);
        let _ = codec::base64url_decode(&s);
        let _ = codec::base64_decode_lossy_text(&s);
    }

    #[test]
    fn percent_roundtrips(s in "\\PC{0,200}") {
        let enc = codec::percent_encode(&s);
        prop_assert_eq!(codec::percent_decode(&enc), s);
    }

    #[test]
    fn percent_decoder_never_panics(s in ".{0,300}") {
        let _ = codec::percent_decode(&s);
    }

    #[test]
    fn url_display_reparses(
        host in "[a-z][a-z0-9]{0,10}(\\.[a-z][a-z0-9]{1,8}){1,3}",
        path in "(/[a-zA-Z0-9_.-]{0,12}){0,4}",
        key in "[a-z]{1,8}",
        value in "[a-zA-Z0-9]{0,16}",
    ) {
        let url_str = format!("https://{host}{}?{key}={value}", if path.is_empty() { "/".to_string() } else { path });
        let url = Url::parse(&url_str).unwrap();
        let reparsed = Url::parse(&url.to_string()).unwrap();
        prop_assert_eq!(url.host().as_str(), reparsed.host().as_str());
        prop_assert_eq!(url.path(), reparsed.path());
        prop_assert_eq!(url.query(), reparsed.query());
        prop_assert_eq!(url.query_param(&key), Some(value));
    }

    #[test]
    fn url_parser_never_panics(s in ".{0,200}") {
        let _ = Url::parse(&s);
    }

    #[test]
    fn url_join_never_panics(
        base_path in "(/[a-z0-9]{0,8}){0,3}",
        reference in ".{0,100}",
    ) {
        let base = Url::parse(&format!("https://example.com{}", if base_path.is_empty() { "/".to_string() } else { base_path })).unwrap();
        let _ = base.join(&reference);
    }

    #[test]
    fn cookie_roundtrips(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,12}",
        value in "[a-zA-Z0-9%=.|-]{0,64}",
        max_age in 1i64..10_000_000,
        secure in any::<bool>(),
    ) {
        let mut c = Cookie::new(name, value).with_max_age(max_age).with_path("/");
        if secure {
            c = c.secure();
        }
        let parsed = Cookie::parse_set_cookie(&c.to_set_cookie()).unwrap();
        prop_assert_eq!(parsed, c);
    }

    #[test]
    fn set_cookie_parser_never_panics(s in ".{0,200}") {
        let _ = Cookie::parse_set_cookie(&s);
    }

    #[test]
    fn levenshtein_metric_properties(a in "[a-z.]{0,24}", b in "[a-z.]{0,24}", c in "[a-z.]{0,24}") {
        // Symmetry, identity, triangle inequality.
        prop_assert_eq!(levenshtein::distance(&a, &b), levenshtein::distance(&b, &a));
        prop_assert_eq!(levenshtein::distance(&a, &a), 0);
        let ab = levenshtein::distance(&a, &b);
        let bc = levenshtein::distance(&b, &c);
        let ac = levenshtein::distance(&a, &c);
        prop_assert!(ac <= ab + bc, "triangle inequality: {ac} > {ab} + {bc}");
        // Similarity stays in [0, 1].
        let s = levenshtein::similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn registrable_domain_is_suffix_and_idempotent(host in "[a-z]{1,8}(\\.[a-z]{1,8}){0,4}") {
        let reg = psl::registrable_domain(&host);
        prop_assert!(host.ends_with(reg));
        prop_assert_eq!(psl::registrable_domain(reg), reg);
    }

    #[test]
    fn html_parser_never_panics(s in ".{0,500}") {
        let doc = redlight::html::parser::parse(&s);
        // Traversals over arbitrary trees must be safe too.
        for id in doc.descendants() {
            let _ = doc.text_content(id);
            let _ = doc.ancestors(id);
        }
        let _ = redlight::html::serialize::serialize(&doc);
    }

    #[test]
    fn html_roundtrip_preserves_element_count(
        tag in "[a-z]{1,6}",
        text in "[a-zA-Z0-9 ]{0,40}",
        attr in "[a-z]{1,6}",
        value in "[a-zA-Z0-9 ]{0,20}",
    ) {
        let html = format!("<{tag} {attr}=\"{value}\">{text}</{tag}>");
        let doc = redlight::html::parser::parse(&html);
        let out = redlight::html::serialize::serialize(&doc);
        let doc2 = redlight::html::parser::parse(&out);
        prop_assert_eq!(doc.len(), doc2.len());
    }

    #[test]
    fn script_engine_never_panics_and_respects_budget(s in ".{0,300}") {
        let mut host = redlight::script::CollectingHost::default();
        let _ = redlight::script::run_with_budget(&s, &mut host, 20_000);
    }

    #[test]
    fn filter_parser_never_panics(line in ".{0,160}") {
        let _ = redlight::blocklist::Filter::parse(&line);
    }

    #[test]
    fn filter_matching_never_panics(
        rule in "(\\|\\|)?[a-z0-9.*^/$,=~-]{1,60}",
        url_path in "[a-zA-Z0-9/._-]{0,60}",
    ) {
        if let Ok(filter) = redlight::blocklist::Filter::parse(&rule) {
            let ctx = redlight::blocklist::RequestContext::new(
                "page.example",
                "req.example",
                redlight::net::http::ResourceKind::Script,
            );
            let _ = filter.matches(&format!("https://req.example/{url_path}"), &ctx);
        }
    }

    #[test]
    fn tfidf_similarity_is_bounded_and_reflexive(
        docs in proptest::collection::vec("[a-z ]{0,80}", 2..6)
    ) {
        let model = TfIdfModel::fit(&docs);
        for i in 0..docs.len() {
            for j in 0..docs.len() {
                let s = model.similarity(i, j);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "sim {s}");
            }
            // Reflexivity for non-empty documents.
            if model.vector(i).nnz() > 0 {
                prop_assert!((model.similarity(i, i) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rank_histories_respect_pinned_best(best in 1u32..900_000, vol in 0.05f64..0.9, seed in any::<u64>()) {
        use redlight::rankings::trajectory::trajectory_with_best;
        use redlight::rankings::TrajectoryParams;
        let params = TrajectoryParams {
            base_rank: best,
            persistence: 0.9,
            volatility: vol,
            days: 120,
        };
        let h = trajectory_with_best(&params, best, seed);
        prop_assert_eq!(h.best(), Some(best));
    }
}
