//! Seed-robustness: structural invariants must hold for ANY seed, not just
//! the calibrated defaults (tolerance-based shape checks live in
//! `end_to_end.rs`; these are the never-break guarantees).

use redlight::{Study, StudyConfig};

#[test]
fn invariants_hold_across_seeds() {
    for seed in [1u64, 1337, 0xDEAD_BEEF, 987654321] {
        let results = Study::run(StudyConfig::tiny(seed));
        let tag = format!("seed {seed}");

        // §3 accounting identities.
        let c = &results.corpus;
        assert_eq!(
            c.candidates,
            c.from_directories + c.from_adult_category + c.from_keywords,
            "{tag}: disjoint sources"
        );
        assert_eq!(c.candidates, c.sanitized + c.false_positives, "{tag}");

        // Cookie funnel monotonicity.
        let s = &results.cookie_stats;
        assert!(s.id_cookies <= s.total_cookies, "{tag}");
        assert!(s.third_party_id_cookies <= s.id_cookies, "{tag}");
        assert!(s.ip_cookies <= s.id_cookies, "{tag}");
        assert!(
            (0.0..=100.0).contains(&s.top100_cookie_site_pct),
            "{tag}: top-100 coverage is a percentage"
        );

        // Fingerprinting: the font rule fires at most on the single
        // ThreatMetrix-analog script, and canvas services are a subset of
        // canvas scripts' hosts.
        assert!(results.fingerprint.font_scripts.len() <= 1, "{tag}");
        assert!(
            results.fingerprint.canvas_services.len()
                <= results.fingerprint.canvas_scripts.len().max(1),
            "{tag}"
        );

        // HTTPS tiers are populated and percentages bounded.
        assert_eq!(results.https.rows.len(), 4, "{tag}");
        for row in &results.https.rows {
            assert!((0.0..=100.0).contains(&row.sites_https_pct), "{tag}");
        }

        // Geo: the Spanish row always exists and the union dominates rows.
        assert!(results
            .table7
            .rows
            .iter()
            .any(|r| r.country == redlight::net::geoip::Country::Spain));
        for row in &results.table7.rows {
            assert!(row.fqdns <= results.table7.total_fqdns, "{tag}");
            assert!(row.unique_ats <= row.ats, "{tag}");
        }

        // Compliance: banner totals and gate percentages stay bounded.
        assert!(
            (0.0..=100.0).contains(&results.banners_eu.total_pct),
            "{tag}"
        );
        assert!(results.policies.with_policy <= c.sanitized, "{tag}");

        // The ownership report never attributes more sites than exist and
        // the flagship analog is always discoverable.
        assert!(results.ownership.attributed_sites <= c.sanitized, "{tag}");
        assert!(
            results
                .ownership
                .clusters
                .iter()
                .any(|cl| cl.company == "MindGeek"),
            "{tag}: the pornhub-analog cluster must be attributed"
        );
    }
}
