//! Determinism of the timeline telemetry: same seed ⇒ byte-identical
//! JSON-lines and CSV series; different fault seeds ⇒ the series diverge;
//! window-width invariance (the per-window counter deltas always sum to
//! the final counters, whatever the width); and SLO violations reach the
//! journal together with their frozen flight snapshots.

use std::time::Duration;

use redlight::net::transport::{NetProfile, SimSpec, SloSpec};
use redlight::obs::ObsContext;
use redlight::sim::{run_traffic, TimelineSpec, TrafficConfig, TrafficReport};
use redlight::WorldConfig;

fn timeline_run(
    seed: u64,
    fault_seed: u64,
    window: Duration,
    net: NetProfile,
) -> (TrafficReport, ObsContext) {
    let config = TrafficConfig {
        seed,
        world: WorldConfig::tiny(11),
        net: net.with_fault_seed(fault_seed),
        timeline: Some(TimelineSpec::with_window(window)),
        ..TrafficConfig::new(600)
    };
    let obs = ObsContext::new();
    let report = run_traffic(&config, &obs);
    (report, obs)
}

#[test]
fn same_seed_yields_byte_identical_series_files() {
    let net = NetProfile::named("sim").expect("sim profile registered");
    let window = Duration::from_millis(500);
    let (ra, _) = timeline_run(5, 0, window, net.clone());
    let (rb, _) = timeline_run(5, 0, window, net);
    let (ta, tb) = (
        ra.timeline.as_ref().expect("timeline on"),
        rb.timeline.as_ref().expect("timeline on"),
    );
    assert_eq!(ta.json_lines(), tb.json_lines());
    assert_eq!(ta.csv(), tb.csv());
    assert_eq!(ta.render(), tb.render());
}

#[test]
fn different_fault_seeds_diverge() {
    let flaky = NetProfile::named("flaky")
        .expect("flaky profile registered")
        .with_sim(SimSpec::default());
    let window = Duration::from_millis(500);
    let (ra, _) = timeline_run(5, 1, window, flaky.clone());
    let (rb, _) = timeline_run(5, 99, window, flaky);
    let (ta, tb) = (
        ra.timeline.as_ref().expect("timeline on"),
        rb.timeline.as_ref().expect("timeline on"),
    );
    assert_ne!(
        ta.json_lines(),
        tb.json_lines(),
        "the fault seed must steer which windows see failures"
    );
}

#[test]
fn window_width_never_changes_the_totals() {
    let net = NetProfile::named("sim").expect("sim profile registered");
    let (coarse, _) = timeline_run(5, 0, Duration::from_secs(1), net.clone());
    let (fine, _) = timeline_run(5, 0, Duration::from_millis(250), net);
    assert_eq!(coarse.requests, fine.requests, "same schedule either way");
    for report in [&coarse, &fine] {
        let tl = &report.timeline.as_ref().expect("timeline on").timeline;
        for (name, total) in [
            ("traffic.requests", report.requests),
            ("traffic.sessions", report.sessions),
            ("traffic.pages", report.pages),
            ("traffic.requests_failed", report.failed_requests),
        ] {
            let sum: u64 = tl.counter_series(name).expect("tracked").iter().sum();
            assert_eq!(sum, total, "window sums must equal the final {name}");
        }
    }
    assert!(
        fine.timeline.unwrap().timeline.windows().len()
            > coarse.timeline.unwrap().timeline.windows().len(),
        "narrower windows ⇒ more rows"
    );
}

#[test]
fn slo_violations_freeze_flights_into_the_journal() {
    let mut net = NetProfile::named("flaky")
        .expect("flaky profile registered")
        .with_sim(SimSpec::default());
    // An unmeetable latency objective guarantees at least one transition.
    net.slo = Some(SloSpec {
        latency_p99_us: 1,
        ..SloSpec::default()
    });
    let (report, obs) = timeline_run(5, 1, Duration::from_millis(500), net);
    let tl = report.timeline.as_ref().expect("timeline on");
    assert!(tl.slo_events.iter().any(|e| e.entered), "objective trips");
    assert!(tl.flight_freezes > 0, "entering a violation freezes");

    let journal = obs.trace.journal();
    assert!(
        journal.find("slo.latency").is_some(),
        "SLO transitions become journal spans"
    );
    let freeze = journal
        .find("flight.freeze.000")
        .expect("flight snapshot span");
    assert!(
        journal
            .spans
            .iter()
            .any(|s| s.parent == freeze.id && s.shard == "traffic.flight"),
        "the frozen ring's events nest under the freeze span"
    );

    let lines = tl.json_lines();
    assert!(lines.contains("\"type\":\"slo\""));
    assert!(lines.contains("\"kind\":\"latency\""));
    assert!(lines.contains("\"type\":\"flight\""));
}
