//! End-to-end shape test: run the reduced-scale study and check every
//! headline percentage against the paper's published values (percentages
//! are scale-invariant; absolute counts are checked proportionally).

use redlight::report::paper;
use redlight::{Study, StudyConfig, StudyResults};

fn org_pct(results: &StudyResults, org: &str) -> f64 {
    results
        .fig3_porn
        .iter()
        .find(|o| o.organization == org)
        .map(|o| o.fraction * 100.0)
        .unwrap_or(0.0)
}

#[test]
fn small_scale_study_matches_paper_shape() {
    let results = Study::run(StudyConfig::small(42));

    let checks = vec![
        // Fig. 1 — rank stability.
        paper::compare("fig1.always_top1m_pct", results.fig1.always_top1m_pct),
        // Fig. 3 — organization prevalence.
        paper::compare("fig3.alphabet_pct", org_pct(&results, "Alphabet")),
        paper::compare("fig3.exoclick_pct", org_pct(&results, "ExoClick")),
        paper::compare("fig3.cloudflare_pct", org_pct(&results, "Cloudflare")),
        // §5.1.1 cookies.
        paper::compare(
            "cookies.sites_pct",
            results.cookie_stats.sites_with_cookies_pct,
        ),
        paper::compare(
            "cookies.third_party_sites_pct",
            results.cookie_stats.sites_with_third_party_pct,
        ),
        // §5.2 HTTPS by tier.
        paper::compare(
            "table6.top1k_sites_pct",
            results.https.rows[0].sites_https_pct,
        ),
        paper::compare(
            "table6.to10k_sites_pct",
            results.https.rows[1].sites_https_pct,
        ),
        paper::compare(
            "table6.to100k_sites_pct",
            results.https.rows[2].sites_https_pct,
        ),
        paper::compare(
            "table6.beyond_sites_pct",
            results.https.rows[3].sites_https_pct,
        ),
        // §7.3 policies.
        paper::compare("policies.with_policy_pct", results.policies.with_policy_pct),
        paper::compare(
            "policies.similar_pairs_pct",
            results.policies.similar_pairs_pct,
        ),
        paper::compare("policies.gdpr_pct", results.policies.gdpr_pct),
        // §4.1 ownership / monetization.
        paper::compare(
            "owners.unattributed_pct",
            results.ownership.unattributed_pct,
        ),
        paper::compare(
            "monetization.subscription_pct",
            results.monetization.with_subscription_pct,
        ),
        // §5.1.3 fingerprinting script attribution.
        paper::compare(
            "fp.third_party_script_pct",
            results.fingerprint.third_party_script_pct,
        ),
    ];

    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.within_tolerance)
        .map(|c| format!("{}: paper {} vs measured {:.2}", c.key, c.paper, c.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "shape drift beyond tolerance:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_arithmetic_matches_section3_exactly() {
    // §3's accounting is deterministic in the config, so at small scale the
    // union/sanitization identities must hold exactly.
    let results = Study::run(StudyConfig::tiny(7));
    let c = &results.corpus;
    assert_eq!(
        c.candidates,
        c.from_directories + c.from_adult_category + c.from_keywords,
        "three disjoint sources"
    );
    assert_eq!(c.candidates, c.sanitized + c.false_positives);
    assert!(c.manual_inspections <= c.candidates);
}

#[test]
fn key_invariants_hold_across_results() {
    let results = Study::run(StudyConfig::tiny(99));

    // The ID filter can only shrink the cookie population.
    let s = &results.cookie_stats;
    assert!(s.id_cookies <= s.total_cookies);
    assert!(s.third_party_id_cookies <= s.id_cookies);
    assert!(s.ip_cookies <= s.id_cookies);

    // Sync pairs connect distinct registrable domains.
    for pair in results.sync.pairs.keys() {
        assert_ne!(pair.origin, pair.destination);
    }

    // HTTPS monotonicity: popularity correlates with HTTPS adoption.
    let rows = &results.https.rows;
    assert!(rows[0].sites_https_pct >= rows[3].sites_https_pct);

    // Banner totals are the sum of the type breakdown.
    let eu_sum: f64 = results.banners_eu.pct_by_type.values().sum();
    assert!((eu_sum - results.banners_eu.total_pct).abs() < 1e-6);

    // Geo rows exist for every crawled country.
    assert_eq!(
        results.table7.rows.len(),
        3,
        "tiny config crawls 3 countries"
    );

    // Table 3 unique counts can never exceed totals.
    for row in &results.table3.rows {
        assert!(row.third_party_unique <= row.third_party_total);
    }
}

#[test]
fn eu_banner_rate_is_at_least_usa_rate() {
    // Geo-fenced consent only ever ADDS banners for EU visitors (Table 8).
    let results = Study::run(StudyConfig::small(2024));
    assert!(
        results.banners_eu.total_pct >= results.banners_usa.total_pct - 1e-9,
        "EU {} < USA {}",
        results.banners_eu.total_pct,
        results.banners_usa.total_pct
    );
}
