//! The simulated clock is purely additive: a full study run through
//! `SimTransport` (the `sim` net profile) must produce byte-identical
//! results to the synchronous default path. The sim decorator charges
//! logical time per outcome but returns every outcome untouched, so only
//! *when* things happen changes — never *what*.

use redlight::net::transport::{NetProfile, SimSpec};
use redlight::{Study, StudyConfig};

#[test]
fn sim_hosted_study_matches_synchronous_study_byte_for_byte() {
    let sync_config = StudyConfig::tiny(2019);
    let mut sim_config = StudyConfig::tiny(2019);
    sim_config.net = sim_config.net.with_sim(SimSpec::default());
    assert!(sim_config.net.sim.is_some());

    let sync_results = Study::run(sync_config);
    let sim_results = Study::run(sim_config);

    assert_eq!(
        sync_results.render_summary(),
        sim_results.render_summary(),
        "sim rehosting must not change any measured result"
    );
}

#[test]
fn sim_profile_equals_default_profile_modulo_time() {
    // The named `sim` profile is exactly `default` plus a service model.
    let sim = NetProfile::named("sim").expect("sim profile registered");
    let default = NetProfile::default();
    assert_eq!(sim.faults, default.faults);
    assert_eq!(sim.metered, default.metered);
    assert_eq!(sim.retry, default.retry);
    assert!(sim.sim.is_some() && default.sim.is_none());
}
