//! The transport seam's three contracts: seeded faults are deterministic,
//! the default profile changes nothing, and the retry policy recovers
//! transient failures within its budget (and records every attempt).

use redlight::browser::Browser;
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::CorpusLabel;
use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight::net::geoip::Country;
use redlight::net::transport::{BrowserKind, FaultSpec, NetProfile, RetryPolicy};
use redlight::net::url::Url;
use redlight::{Study, StudyConfig, World, WorldConfig};
use std::time::Duration;

fn flaky_config(seed: u64, fault_seed: u64) -> StudyConfig {
    let mut config = StudyConfig::tiny(seed);
    config.net = NetProfile::named("flaky")
        .expect("built-in profile")
        .with_fault_seed(fault_seed);
    config
}

#[test]
fn same_fault_seed_same_study_results() {
    let a = Study::run(flaky_config(911, 7));
    let b = Study::run(flaky_config(911, 7));
    assert_eq!(
        a.render_summary(),
        b.render_summary(),
        "a fixed fault seed must replay the exact same network weather"
    );
}

#[test]
fn fault_seed_steers_the_injected_weather() {
    let a = Study::run(flaky_config(911, 7));
    let b = Study::run(flaky_config(911, 8));
    assert_ne!(
        a.render_summary(),
        b.render_summary(),
        "different fault seeds must perturb the crawl differently"
    );
}

#[test]
fn default_profile_matches_direct_browser_run() {
    // The crawler's default stack (metered, no faults, no retries) must
    // record byte-for-byte what a bare Browser over the concrete WebServer
    // records — the seam itself is invisible.
    let world = World::build(WorldConfig::tiny(912));
    let corpus = CorpusCompiler::new(&world).compile();
    let config = CrawlConfig {
        country: Country::Spain,
        corpus: CorpusLabel::Porn,
        store_dom: true,
    };

    let seamed = OpenWpmCrawler::new(&world, config).crawl(&corpus.sanitized);

    let ctx = Browser::context_for(&world, Country::Spain, BrowserKind::OpenWpm);
    let mut direct = Browser::new(&world, ctx);
    for (record, domain) in seamed.visits.iter().zip(&corpus.sanitized) {
        assert_eq!(seamed.name(record.domain), domain);
        assert_eq!(record.attempts, 1, "no retry budget ⇒ single attempts");
        let url = Url::parse(&format!("https://{domain}/")).expect("corpus domains parse");
        let visit = direct.visit(&url);
        assert_eq!(record.visit.success, visit.success);
        assert_eq!(record.visit.requests.len(), visit.requests.len());
        for (a, b) in record.visit.requests.iter().zip(&visit.requests) {
            assert_eq!(a.url, b.url);
        }
        assert_eq!(record.visit.dom_html, visit.dom_html);
        assert_eq!(record.visit.screenshot_hash, visit.screenshot_hash);
    }
}

#[test]
fn default_and_unmetered_profiles_render_identically() {
    let a = Study::run(StudyConfig::tiny(913));
    let mut config = StudyConfig::tiny(913);
    config.net = NetProfile::direct();
    let b = Study::run(config);
    assert_eq!(
        a.render_summary(),
        b.render_summary(),
        "metering must never leak into the paper tables"
    );
}

#[test]
fn retries_recover_transient_stalls_within_budget() {
    // Every request stalls on its first attempt (1000‰, transient after
    // one), so each document fetch in a chain — redirect hops, the
    // HTTPS→HTTP downgrade — costs one extra visit; a 6-attempt budget
    // must land every site the fault-free crawl lands, and the spillover
    // must be recorded.
    let world = World::build(WorldConfig::tiny(914));
    let corpus = CorpusCompiler::new(&world).compile();
    let config = CrawlConfig {
        country: Country::Spain,
        corpus: CorpusLabel::Porn,
        store_dom: false,
    };

    let clean = OpenWpmCrawler::new(&world, config.clone()).crawl(&corpus.sanitized);

    let mut net = NetProfile::default().with_fault_seed(3);
    net.faults = Some(FaultSpec {
        dns_pm: 0,
        reset_pm: 0,
        stall_pm: 1000,
        server_error_pm: 0,
        truncate_pm: 0,
        transient_attempts: 1,
    });
    net.retry = RetryPolicy::retries(6, Duration::from_millis(250), 4);
    let retried = OpenWpmCrawler::new(&world, config)
        .with_net(net)
        .crawl(&corpus.sanitized);

    assert_eq!(retried.visits.len(), clean.visits.len());
    for (r, c) in retried.visits.iter().zip(&clean.visits) {
        assert_eq!(retried.name(r.domain), clean.name(c.domain));
        assert_eq!(
            r.visit.success,
            c.visit.success,
            "{}: transient stalls must clear within the retry budget",
            retried.name(r.domain)
        );
        assert!(r.attempts <= 6, "budget is a hard cap");
    }
    assert!(
        retried.visits.iter().any(|v| v.attempts > 1),
        "universal stalls must force at least one retry somewhere"
    );
    assert!(retried.total_retries() > 0);
    assert_eq!(clean.total_retries(), 0);
}
