//! Tests for the extension features (the paper's §10 future work and §2.1
//! background items implemented beyond the core reproduction).

use redlight::analysis::agegate::rta_prevalence;
use redlight::analysis::{ats, cookies, crossborder, fingerprint, sync, thirdparty};
use redlight::blocklist::FilterSet;
use redlight::browser::Browser;
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::{CorpusLabel, CrawlRecord};
use redlight::net::geoip::Country;
use redlight::net::url::Url;
use redlight::websim::server::BrowserKind;
use redlight::{World, WorldConfig};

fn crawl(world: &World, domains: &[String], blocker: bool) -> CrawlRecord {
    let ctx = Browser::context_for(world, Country::Spain, BrowserKind::OpenWpm);
    let client_ip = ctx.client_ip;
    let mut browser = Browser::new(world, ctx);
    if blocker {
        let mut filters = FilterSet::new();
        filters.add_list(&world.easylist);
        filters.add_list(&world.easyprivacy);
        browser.set_blocker(filters);
    }
    let mut record = CrawlRecord::new(Country::Spain, CorpusLabel::Porn, client_ip);
    for d in domains {
        record.push_visit(
            d,
            browser.visit(&Url::parse(&format!("https://{d}/")).unwrap()),
        );
    }
    record
}

#[test]
fn blocker_cuts_listed_trackers_but_not_unlisted_fingerprinters() {
    let world = World::build(WorldConfig::small(67));
    let corpus = CorpusCompiler::new(&world).compile();
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);

    let plain = crawl(&world, &corpus.sanitized, false);
    let blocked = crawl(&world, &corpus.sanitized, true);

    // Domain-wide-listed trackers must never be contacted with the blocker.
    let blocked_extract = thirdparty::extract(&blocked, true);
    for fqdn in [
        "exoclick.com",
        "exosrv.com",
        "doubleclick.net",
        "addthis.com",
    ] {
        assert_eq!(
            blocked_extract.sites_with(fqdn),
            0,
            "{fqdn} must be blocked by its ||domain^ rule"
        );
    }

    // Tracking cookies drop sharply…
    let count_id = |c: &CrawlRecord| {
        cookies::collect(c)
            .iter()
            .filter(|r| r.third_party && cookies::is_id_cookie(r))
            .count()
    };
    let (before, after) = (count_id(&plain), count_id(&blocked));
    assert!(
        (after as f64) < 0.6 * before as f64,
        "blocker should cut tracking cookies: {before} -> {after}"
    );

    // …while most canvas fingerprinting survives (91 % unindexed, §5.1.3).
    let fp_before = fingerprint::detect(&plain, ats::AtsVerdicts::new(&classifier))
        .canvas_sites
        .len();
    let fp_after = fingerprint::detect(&blocked, ats::AtsVerdicts::new(&classifier))
        .canvas_sites
        .len();
    // At this reduced scale the EasyList-indexed share of FP scripts is
    // overweighted (paper scale: 9 % indexed), so require survival rather
    // than near-total persistence.
    assert!(
        fp_after >= 1 && fp_after as f64 >= 0.35 * fp_before as f64,
        "fingerprinting should survive the blocker: {fp_before} -> {fp_after}"
    );
    // The unlisted fingerprinter specifically keeps running.
    let still_fp = fingerprint::detect(&blocked, ats::AtsVerdicts::new(&classifier));
    assert!(
        still_fp
            .canvas_services
            .iter()
            .any(|d| !classifier.is_ats_fqdn(d)),
        "some unlisted canvas service must persist"
    );
}

#[test]
fn crossborder_totals_are_consistent() {
    let world = World::build(WorldConfig::tiny(71));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, false);
    let hosting = |host: &str| world.hosting_country(host);
    let report = crossborder::report(&record, &hosting);

    assert!(report.gdpr_jurisdiction, "Spain is a GDPR vantage point");
    assert!(report.identifier_bearing <= report.third_party_requests);
    assert!(report.leaving_jurisdiction <= report.identifier_bearing);
    let by_dest_sum: usize = report.by_destination.values().sum();
    assert_eq!(by_dest_sum, report.identifier_bearing);
    // Determinism of the hosting view.
    assert_eq!(
        world.hosting_country("exoclick.com"),
        world.hosting_country("exoclick.com")
    );
}

#[test]
fn sync_delimiter_splitting_only_adds_matches() {
    let world = World::build(WorldConfig::tiny(73));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, false);

    let strict =
        sync::detect_with_options(&record, &corpus.sanitized, 50, sync::SyncOptions::default());
    let split = sync::detect_with_options(
        &record,
        &corpus.sanitized,
        50,
        sync::SyncOptions {
            min_value_len: 8,
            split_delimiters: true,
        },
    );
    assert!(split.pairs.len() >= strict.pairs.len());
    assert!(split.sites_with_sync >= strict.sites_with_sync);
    // Every strict pair survives under splitting (monotonicity).
    for pair in strict.pairs.keys() {
        assert!(split.pairs.contains_key(pair), "lost pair {pair:?}");
    }
}

#[test]
fn rta_labels_match_ground_truth() {
    let world = World::build(WorldConfig::small(79));
    let corpus = CorpusCompiler::new(&world).compile();
    let record = crawl(&world, &corpus.sanitized, false);
    let report = rta_prevalence(&record);
    let truth = world
        .sites
        .iter()
        .filter(|s| {
            s.is_porn()
                && s.rta_label
                && record
                    .successful()
                    .any(|v| record.name(v.domain) == s.domain && !v.visit.dom_html.is_empty())
        })
        .count();
    assert_eq!(report.with_rta_label, truth, "RTA detection must be exact");
    assert!(
        report.with_rta_pct < 20.0,
        "RTA adoption is a minority practice"
    );
}
