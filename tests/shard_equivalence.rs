//! The sharded map/reduce contract: analyzing a study per-shard and
//! merging the partials must yield `StudyResults` byte-identical to the
//! monolithic whole-crawl run, for every shard count ≥ 1 — including
//! oversubscribed splits with more shards than visits.
//!
//! The measurement DB is collected once (collection is untouched by
//! sharding); every property case re-runs only the analysis layer with a
//! randomly drawn shard count and compares the rendered summary bytes.

use std::sync::OnceLock;

use proptest::prelude::*;

use redlight::core::results::StageReport;
use redlight::core::stages::{self, AnalysisContext};
use redlight::crawler::db::MeasurementDb;
use redlight::{Study, StudyConfig, World, WorldConfig};

struct Seeded {
    world: World,
    config: StudyConfig,
    db: MeasurementDb,
    monolithic_summary: String,
}

/// The seeded study, collected and analyzed monolithically exactly once.
fn seeded() -> &'static Seeded {
    static CELL: OnceLock<Seeded> = OnceLock::new();
    CELL.get_or_init(|| {
        let config = StudyConfig::tiny(4242);
        let world = World::build(WorldConfig::tiny(4242));
        let (db, _) = Study::collect_db(&world, &config);
        let mut fixture = Seeded {
            monolithic_summary: String::new(),
            world,
            config,
            db,
        };
        fixture.monolithic_summary = analyze(&fixture, 1);
        fixture
    })
}

/// Runs the full analysis layer over the seeded DB with `shards` shards
/// and renders the deterministic summary.
fn analyze(fixture: &Seeded, shards: usize) -> String {
    let ctx = AnalysisContext::build_sharded(&fixture.world, &fixture.config, &fixture.db, shards);
    let (outputs, _) = stages::run(&fixture.db, &ctx, &stages::all_stages());
    let best_ranks = ctx.best_ranks.clone();
    outputs
        .into_results(best_ranks, StageReport::default())
        .render_summary()
}

proptest! {
    #[test]
    fn any_shard_split_merges_byte_identical(shards in 1usize..=24) {
        let fixture = seeded();
        prop_assert_eq!(
            analyze(fixture, shards),
            fixture.monolithic_summary.clone(),
            "shards={} diverged from the monolithic run",
            shards
        );
    }
}

#[test]
fn oversubscribed_split_still_merges_identically() {
    // More shards than the tiny corpus has visits: most shards are empty.
    let fixture = seeded();
    assert_eq!(analyze(fixture, 512), fixture.monolithic_summary);
}

#[test]
fn full_sharded_study_matches_monolithic_run() {
    // End to end through `Study::run_on_sharded`, covering the sharded
    // context build, the sharded stage runner and the shard-stat report.
    let config = StudyConfig::tiny(77);
    let world = World::build(WorldConfig::tiny(77));
    let mono = Study::run_on(&world, &config);
    let sharded = Study::run_on_sharded(&world, &config, 3);
    assert_eq!(mono.render_summary(), sharded.render_summary());
    // Shard stats ride along in the report (never in the summary).
    assert!(mono.stage_report.shards.is_empty());
    assert!(!sharded.stage_report.shards.is_empty());
    for stat in &sharded.stage_report.shards {
        assert_eq!(stat.shards, 3.min(stat.visits.max(1)));
        assert!(stat.min_shard <= stat.max_shard);
        assert!(stat.interned_bytes > 0, "visited crawls intern domains");
    }
}
