//! Determinism of the simulated-time layer: the traffic workload renders
//! byte-identically for the same seed (report, tier table, span journal,
//! metrics), diverges across seeds, and network weather costs real
//! logical time — a flaky crawl's visit walls are strictly longer than a
//! healthy one's on the sim clock.

use std::time::Duration;

use redlight::crawler::db::CorpusLabel;
use redlight::crawler::openwpm::CrawlConfig;
use redlight::crawler::OpenWpmCrawler;
use redlight::net::geoip::Country;
use redlight::net::transport::{NetProfile, SimSpec};
use redlight::obs::ObsContext;
use redlight::sim::{run_traffic, TrafficConfig, TrafficReport};
use redlight::{World, WorldConfig};

fn traffic_run(seed: u64, net: NetProfile) -> (TrafficReport, ObsContext) {
    let config = TrafficConfig {
        seed,
        world: WorldConfig::tiny(11),
        net,
        ..TrafficConfig::new(600)
    };
    let obs = ObsContext::new();
    let report = run_traffic(&config, &obs);
    (report, obs)
}

#[test]
fn same_seed_yields_byte_identical_report_and_journal() {
    let net = NetProfile::named("sim").expect("sim profile registered");
    let (ra, oa) = traffic_run(5, net.clone());
    let (rb, ob) = traffic_run(5, net);

    // The rendered latency-percentile report and the tier table are pure
    // functions of the seed.
    assert_eq!(ra.render(), rb.render());
    assert_eq!(ra.render_table(), rb.render_table());
    assert_eq!(ra.events, rb.events);

    // So are the obs exports: span journal (logical ticks only) and the
    // deterministic metric surface.
    assert_eq!(
        oa.trace.journal().json_lines(),
        ob.trace.journal().json_lines()
    );
    assert_eq!(
        oa.metrics.snapshot().deterministic(),
        ob.metrics.snapshot().deterministic()
    );
}

#[test]
fn different_seeds_diverge() {
    let net = NetProfile::named("sim").expect("sim profile registered");
    let (ra, _) = traffic_run(5, net.clone());
    let (rc, _) = traffic_run(6, net);
    assert_ne!(
        ra.render(),
        rc.render(),
        "the seed must steer arrivals, site choices and page walks"
    );
}

#[test]
fn flaky_traffic_takes_strictly_longer_than_direct() {
    let direct = NetProfile::named("sim").expect("sim profile registered");
    let flaky = NetProfile::named("flaky")
        .expect("flaky profile registered")
        .with_sim(SimSpec::default());
    let (healthy, _) = traffic_run(5, direct);
    let (stormy, _) = traffic_run(5, flaky);
    assert!(stormy.faults > 0, "flaky weather must inject faults");
    assert!(
        stormy.makespan > healthy.makespan,
        "stalls and retries must cost logical time: {:?} vs {:?}",
        stormy.makespan,
        healthy.makespan
    );
}

/// Crawls the same porn domains under a sim clock twice — once over a
/// healthy network, once under the flaky fault plan — and compares the
/// recorded per-visit walls, which are logical time under sim profiles.
#[test]
fn flaky_crawl_walls_strictly_exceed_direct_walls() {
    let world = World::build(WorldConfig::tiny(11));
    let domains: Vec<String> = world
        .sites
        .iter()
        .filter(|s| s.is_porn() && !s.unresponsive)
        .take(25)
        .map(|s| s.domain.clone())
        .collect();
    assert!(
        !domains.is_empty(),
        "tiny world must have crawlable porn sites"
    );

    let crawl_wall = |net: NetProfile| -> Duration {
        let config = CrawlConfig {
            country: Country::Usa,
            corpus: CorpusLabel::Porn,
            store_dom: false,
        };
        let record = OpenWpmCrawler::new(&world, config)
            .with_net(net)
            .crawl(&domains);
        record.visits.iter().map(|v| v.wall).sum()
    };

    let direct = crawl_wall(NetProfile::direct().with_sim(SimSpec::default()));
    let flaky = crawl_wall(
        NetProfile::named("flaky")
            .expect("flaky profile registered")
            .with_sim(SimSpec::default()),
    );
    assert!(direct > Duration::ZERO, "sim walls are logical, not zero");
    assert!(
        flaky > direct,
        "fault stalls and consumed backoff must lengthen logical visit walls: \
         {flaky:?} vs {direct:?}"
    );

    // Replay: logical walls are deterministic, unlike wall-clock timing.
    let direct_again = crawl_wall(NetProfile::direct().with_sim(SimSpec::default()));
    assert_eq!(direct, direct_again, "sim crawl walls must replay exactly");
}
