//! Pipeline-validation tests: the one place where analysis output is
//! compared against simulator ground truth, measuring the precision/recall
//! of each detector (the honesty contract of DESIGN.md).

use std::collections::BTreeSet;

use redlight::analysis::{ats, consent, fingerprint, malware, sync, thirdparty, webrtc};
use redlight::crawler::corpus::CorpusCompiler;
use redlight::crawler::db::CorpusLabel;
use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
use redlight::crawler::selenium::SeleniumCrawler;
use redlight::net::geoip::Country;
use redlight::websim::sitegen::AgeGateKind;
use redlight::{World, WorldConfig};

struct Fixture {
    world: World,
    porn_crawl: redlight::crawler::db::CrawlRecord,
    classifier: ats::AtsClassifier,
}

fn fixture(seed: u64) -> Fixture {
    let world = World::build(WorldConfig::small(seed));
    let corpus = CorpusCompiler::new(&world).compile();
    let porn_crawl = OpenWpmCrawler::new(
        &world,
        CrawlConfig {
            country: Country::Spain,
            corpus: CorpusLabel::Porn,
            store_dom: true,
        },
    )
    .crawl(&corpus.sanitized);
    let classifier = ats::AtsClassifier::from_lists(&world.easylist, &world.easyprivacy);
    Fixture {
        world,
        porn_crawl,
        classifier,
    }
}

#[test]
fn corpus_compilation_has_perfect_precision_and_recall() {
    let world = World::build(WorldConfig::small(3));
    let report = CorpusCompiler::new(&world).compile();
    let truth: BTreeSet<&str> = world
        .sites
        .iter()
        .filter(|s| s.is_porn() && !s.unresponsive)
        .map(|s| s.domain.as_str())
        .collect();
    let found: BTreeSet<&str> = report.sanitized.iter().map(String::as_str).collect();
    assert_eq!(found, truth, "§3 sanitization must recover ground truth");
}

#[test]
fn canvas_detector_has_high_precision_and_recall() {
    let f = fixture(5);
    let report = fingerprint::detect(&f.porn_crawl, ats::AtsVerdicts::new(&f.classifier));

    // Ground truth: third-party services with canvas FP + first-party FP
    // sites actually crawled.
    let truth_services: BTreeSet<String> = f
        .world
        .services
        .iter()
        .filter(|s| s.fp.canvas)
        .map(|s| redlight::net::psl::registrable_domain(&s.fqdn).to_string())
        .collect();

    // Precision: every detected third-party canvas service is ground truth.
    for d in &report.canvas_services {
        assert!(truth_services.contains(d), "false positive service {d}");
    }
    // Recall on sites: every crawled, non-timeout site with a canvas
    // deployment or first-party FP must be detected.
    let crawled: BTreeSet<&str> = f
        .porn_crawl
        .successful()
        .map(|v| f.porn_crawl.name(v.domain))
        .collect();
    for site in f
        .world
        .sites
        .iter()
        .filter(|s| s.is_porn() && crawled.contains(s.domain.as_str()) && s.first_party_canvas)
    {
        assert!(
            report.canvas_sites.contains(&site.domain),
            "missed first-party canvas on {}",
            site.domain
        );
    }
    // Decoys are rejected, never counted: sites with ONLY a decoy must not
    // appear.
    for site in f.world.sites.iter().filter(|s| {
        s.decoy_canvas
            && !s.first_party_canvas
            && s.deployments.iter().all(|d| d.fp_scripts == 0)
            && crawled.contains(s.domain.as_str())
    }) {
        let third_party_fp = report.canvas_sites.contains(&site.domain);
        // A site can still legitimately appear if a third-party canvas
        // script reached it through adoption; verify against deployments.
        assert!(
            !third_party_fp
                || site
                    .deployments
                    .iter()
                    .any(|d| f.world.services.get(d.service).fp.canvas),
            "decoy-only site {} misclassified",
            site.domain
        );
    }
}

#[test]
fn webrtc_detector_matches_ground_truth_services() {
    let f = fixture(7);
    let report = webrtc::detect(&f.porn_crawl, ats::AtsVerdicts::new(&f.classifier));
    let truth: BTreeSet<String> = f
        .world
        .services
        .iter()
        .filter(|s| s.fp.webrtc)
        .map(|s| redlight::net::psl::registrable_domain(&s.fqdn).to_string())
        .collect();
    for d in &report.services {
        assert!(truth.contains(d), "false positive WebRTC service {d}");
    }
    assert!(!report.services.is_empty(), "WebRTC users must be found");
}

#[test]
fn banner_detection_precision_and_recall() {
    let f = fixture(11);
    let verify = |_: &str| true; // measure raw detector quality first
    let (_, observations) = consent::breakdown(&f.porn_crawl, &verify);

    let crawled: BTreeSet<&str> = f
        .porn_crawl
        .successful()
        .map(|v| f.porn_crawl.name(v.domain))
        .collect();
    let truth: BTreeSet<&str> = f
        .world
        .sites
        .iter()
        // Spain is an EU vantage point: both global and EU-only banners show.
        .filter(|s| s.banner.is_some() && crawled.contains(s.domain.as_str()))
        .map(|s| s.domain.as_str())
        .collect();
    let found: BTreeSet<&str> = observations.iter().map(|o| o.site.as_str()).collect();

    for site in &found {
        assert!(truth.contains(site), "banner false positive on {site}");
    }
    // Spain sees both global and EU-only banners: full recall expected.
    for site in &truth {
        assert!(found.contains(site), "banner missed on {site}");
    }
    // Type classification agrees with ground truth.
    for obs in &observations {
        let site = f.world.site_by_domain(&obs.site).unwrap();
        let truth_kind = site.banner.unwrap().kind;
        let expected = match truth_kind {
            redlight::websim::sitegen::BannerType::NoOption => "No Option",
            redlight::websim::sitegen::BannerType::Confirmation => "Confirmation",
            redlight::websim::sitegen::BannerType::Binary => "Binary",
            redlight::websim::sitegen::BannerType::Others => "Others",
        };
        assert_eq!(
            consent::label(obs.kind),
            expected,
            "misclassified banner on {}",
            obs.site
        );
    }
}

#[test]
fn age_gate_detection_matches_ground_truth() {
    let world = World::build(WorldConfig::small(13));
    let corpus = CorpusCompiler::new(&world).compile();
    let sample: Vec<String> = corpus.sanitized.iter().take(80).cloned().collect();
    let records = SeleniumCrawler::new(&world, Country::Spain).crawl(&sample);
    for rec in records.iter().filter(|r| r.reachable) {
        let site = world.site_by_domain(&rec.domain).unwrap();
        let truth = site.age_gate.in_country(Country::Spain);
        assert_eq!(
            rec.age_gate_detected,
            truth.is_some(),
            "gate detection mismatch on {}",
            rec.domain
        );
        if truth == Some(AgeGateKind::SimpleButton) {
            assert!(
                rec.age_gate_bypassed,
                "simple gate not bypassed: {}",
                rec.domain
            );
        }
        if truth == Some(AgeGateKind::SocialLogin) {
            assert!(!rec.age_gate_bypassed);
            assert!(rec.social_login_gate);
        }
    }
}

#[test]
fn malware_detection_matches_threat_ground_truth() {
    let f = fixture(17);
    struct Feed<'w>(&'w World);
    impl redlight::analysis::ThreatFeed for Feed<'_> {
        fn detections(&self, domain: &str) -> u8 {
            self.0
                .scanners
                .detections(domain, self.0.truly_malicious(domain))
        }
    }
    let report = malware::detect(&f.porn_crawl, &Feed(&f.world));
    // Every flagged service really is malicious ground truth.
    for d in &report.flagged_services {
        let malicious = f
            .world
            .services
            .iter()
            .any(|s| s.malicious && redlight::net::psl::registrable_domain(&s.fqdn) == d);
        assert!(malicious, "false positive malware flag on {d}");
    }
    // Mining attribution is exact.
    for d in &report.mining_services {
        let miner = f
            .world
            .services
            .iter()
            .any(|s| s.miner && redlight::net::psl::registrable_domain(&s.fqdn) == d);
        assert!(miner, "{d} is not a miner");
    }
    assert!(!report.mining_services.is_empty());
}

#[test]
fn sync_detection_only_reports_real_flows() {
    let f = fixture(19);
    let corpus: Vec<String> = f
        .porn_crawl
        .visits
        .iter()
        .map(|v| f.porn_crawl.name(v.domain).to_string())
        .collect();
    let report = sync::detect(&f.porn_crawl, &corpus, 100);
    // Every origin must be a domain that actually set a cookie somewhere.
    let cookie_setters: BTreeSet<String> = f
        .porn_crawl
        .visits
        .iter()
        .flat_map(|v| v.visit.cookies.iter())
        .map(|c| redlight::net::psl::registrable_domain(&c.effective_domain).to_string())
        .collect();
    for pair in report.pairs.keys() {
        assert!(
            cookie_setters.contains(&pair.origin),
            "sync origin {} never set a cookie",
            pair.origin
        );
    }
}

#[test]
fn third_party_classification_agrees_with_world_structure() {
    let f = fixture(23);
    let extract = thirdparty::extract(&f.porn_crawl, true);
    // No site's own domain (or its subdomains) may appear among its third
    // parties.
    for (site, parties) in &extract.per_site {
        let reg = redlight::net::psl::registrable_domain(site);
        for fqdn in &parties.third {
            assert_ne!(
                redlight::net::psl::registrable_domain(fqdn),
                reg,
                "self-classified third party on {site}"
            );
        }
    }
    // Cross-embedded peer porn sites must be classified third-party, not
    // first-party (different registrable domains, unrelated certs).
    let exo = extract
        .third_party_fqdns
        .iter()
        .any(|f| f.contains("exoclick") || f.contains("exosrv"));
    assert!(exo, "the ExoClick family must surface as third-party");
}
