//! The batch-classification contract: [`classify_batch`] must agree with
//! per-request classification on every verdict — regardless of the order
//! the per-request path walks the requests in, the shard count the batch is
//! computed over, and whether the classifier's verdict memo is cold or
//! pre-warmed — and a full study must render byte-identically with
//! batching on and off.
//!
//! The measurement DB is collected once (collection never classifies);
//! every property case re-classifies it both ways with fresh or shared
//! classifiers and compares verdicts per request occurrence.
//!
//! [`classify_batch`]: redlight::analysis::ats::AtsClassifier::classify_batch

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use redlight::analysis::ats::{AtsClassifier, AtsVerdicts};
use redlight::crawler::db::MeasurementDb;
use redlight::net::psl::HostCache;
use redlight::{Study, StudyConfig, World, WorldConfig};

struct Seeded {
    world: World,
    db: MeasurementDb,
}

/// The seeded study, collected exactly once.
fn seeded() -> &'static Seeded {
    static CELL: OnceLock<Seeded> = OnceLock::new();
    CELL.get_or_init(|| {
        let config = StudyConfig::tiny(4242);
        let world = World::build(WorldConfig::tiny(4242));
        let (db, _) = Study::collect_db(&world, &config);
        Seeded { world, db }
    })
}

fn classifier(world: &World) -> AtsClassifier {
    AtsClassifier::with_hosts(
        &world.easylist,
        &world.easyprivacy,
        Arc::new(HostCache::new()),
    )
}

/// One classifiable request occurrence: `(crawl, visit, request)` indices.
/// Skipped requests (failed visits, no final URL, unanswered) never reach
/// either classification path.
fn occurrences(db: &MeasurementDb) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for (c, crawl) in db.crawls().iter().enumerate() {
        for (v, record) in crawl.visits.iter().enumerate() {
            if !record.visit.success || record.final_host.is_none() {
                continue;
            }
            for (r, req) in record.visit.requests.iter().enumerate() {
                if req.status.is_some() {
                    out.push((c, v, r));
                }
            }
        }
    }
    out
}

/// Classifies occurrence `(c, v, r)` the pre-batching way: strings rendered
/// from the request record, one `is_ats_url` call.
fn per_request_verdict(
    db: &MeasurementDb,
    cls: &AtsClassifier,
    occ: (usize, usize, usize),
) -> bool {
    let record = &db.crawls()[occ.0].visits[occ.1];
    let req = &record.visit.requests[occ.2];
    let page = record
        .visit
        .final_url
        .as_ref()
        .expect("occurrence of a successful visit");
    cls.is_ats_url(
        &req.url.without_fragment(),
        page.host().as_str(),
        req.url.host().as_str(),
        req.kind,
    )
}

/// Classifies every occurrence through per-crawl batch columns computed
/// over `shards` slices per crawl, returning verdicts in occurrence order.
fn batched_verdicts(db: &MeasurementDb, cls: &AtsClassifier, shards: usize) -> Vec<bool> {
    let mut out = Vec::new();
    for crawl in db.crawls() {
        // Batch per shard slice: the union of the slice columns must cover
        // the whole crawl exactly like one whole-crawl batch.
        let batches: Vec<_> = crawl
            .shards(shards)
            .into_iter()
            .map(|slice| cls.classify_batch(slice))
            .collect();
        for record in &crawl.visits {
            let Some(page) = record.final_host else {
                continue;
            };
            if !record.visit.success {
                continue;
            }
            for (i, req) in record.visit.requests.iter().enumerate() {
                if req.status.is_none() {
                    continue;
                }
                let key = (
                    record.request_urls[i],
                    page,
                    record.request_hosts[i],
                    req.kind,
                );
                // Exactly one shard's column covers each occurrence; resolve
                // it through the stage-facing view to cover that path too.
                let covering = batches
                    .iter()
                    .find(|b| b.url_verdict(key).is_some())
                    .expect("every occurrence is covered by its shard's batch");
                let verdict = AtsVerdicts::with_batch(cls, covering).request_verdict(
                    crawl.names(),
                    record,
                    page,
                    i,
                );
                assert_eq!(Some(verdict), covering.url_verdict(key));
                out.push(verdict);
            }
        }
    }
    out
}

proptest! {
    /// Per-request verdicts are independent of walk order, and the batch
    /// path agrees with them occurrence for occurrence — for any shard
    /// count and with both a cold and a pre-warmed classifier.
    #[test]
    fn batch_agrees_with_any_per_request_order(
        shards in 1usize..=12,
        perm_seed in any::<u64>(),
        warm in any::<bool>(),
    ) {
        let fixture = seeded();
        let occs = occurrences(&fixture.db);
        prop_assert!(!occs.is_empty(), "the tiny study records classifiable requests");

        // Deterministic Fisher-Yates permutation of the walk order from the
        // drawn seed (proptest shrinks the seed, not the permutation).
        let mut order: Vec<usize> = (0..occs.len()).collect();
        let mut state = perm_seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        // Reference: a fresh classifier walked in canonical order.
        let reference = classifier(&fixture.world);
        let expected: Vec<bool> = occs
            .iter()
            .map(|&occ| per_request_verdict(&fixture.db, &reference, occ))
            .collect();

        // Permuted per-request walk on its own fresh classifier.
        let permuted_cls = classifier(&fixture.world);
        let mut permuted = vec![false; occs.len()];
        for &i in &order {
            permuted[i] = per_request_verdict(&fixture.db, &permuted_cls, occs[i]);
        }
        prop_assert_eq!(&permuted, &expected, "walk order changed a verdict");

        // Batch path: cold, or pre-warmed by a full per-request pass (the
        // memo already holding every verdict must not change anything).
        let batch_cls = if warm { permuted_cls } else { classifier(&fixture.world) };
        let batched = batched_verdicts(&fixture.db, &batch_cls, shards);
        prop_assert_eq!(&batched, &expected, "batch (shards={}) diverged", shards);
    }
}

#[test]
fn study_renders_identically_with_batching_on_and_off() {
    let world = World::build(WorldConfig::tiny(77));
    let mut on = StudyConfig::tiny(77);
    on.batch_classify = true;
    let mut off = on.clone();
    off.batch_classify = false;
    assert_eq!(
        Study::run_on(&world, &on).render_summary(),
        Study::run_on(&world, &off).render_summary(),
        "batching changed the rendered study"
    );
}
