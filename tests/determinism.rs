//! Reproducibility: the whole study is a pure function of the seed.

use redlight::{Study, StudyConfig, World, WorldConfig};

#[test]
fn same_seed_same_world() {
    let a = World::build(WorldConfig::tiny(1234));
    let b = World::build(WorldConfig::tiny(1234));
    assert_eq!(a.sites.len(), b.sites.len());
    for (x, y) in a.sites.iter().zip(&b.sites) {
        assert_eq!(x.domain, y.domain);
        assert_eq!(x.https, y.https);
        assert_eq!(x.deployments.len(), y.deployments.len());
        assert_eq!(x.history.best(), y.history.best());
        assert_eq!(x.policy.is_some(), y.policy.is_some());
    }
    assert_eq!(a.easylist, b.easylist);
    assert_eq!(a.easyprivacy, b.easyprivacy);
}

#[test]
fn same_seed_same_study_results() {
    let a = Study::run(StudyConfig::tiny(777));
    let b = Study::run(StudyConfig::tiny(777));
    assert_eq!(a.corpus.sanitized, b.corpus.sanitized);
    assert_eq!(a.table2.porn_third_party, b.table2.porn_third_party);
    assert_eq!(a.cookie_stats.total_cookies, b.cookie_stats.total_cookies);
    assert_eq!(a.sync.pairs, b.sync.pairs);
    assert_eq!(
        a.fingerprint.canvas_scripts.len(),
        b.fingerprint.canvas_scripts.len()
    );
    assert_eq!(a.policies.with_policy, b.policies.with_policy);
    assert_eq!(a.render_table2(), b.render_table2());
}

#[test]
fn different_seeds_differ() {
    let a = World::build(WorldConfig::tiny(1));
    let b = World::build(WorldConfig::tiny(2));
    let domains_a: Vec<&str> = a.sites.iter().map(|s| s.domain.as_str()).collect();
    let domains_b: Vec<&str> = b.sites.iter().map(|s| s.domain.as_str()).collect();
    assert_ne!(domains_a, domains_b, "seed must steer generation");
}

#[test]
fn crawl_order_is_stable_within_a_session() {
    // Re-crawling the same world with the same session must produce the
    // same request streams (the cache/benchmark prerequisite).
    use redlight::crawler::corpus::CorpusCompiler;
    use redlight::crawler::db::CorpusLabel;
    use redlight::crawler::openwpm::{CrawlConfig, OpenWpmCrawler};
    use redlight::net::geoip::Country;

    let world = World::build(WorldConfig::tiny(55));
    let corpus = CorpusCompiler::new(&world).compile();
    let cfg = CrawlConfig {
        country: Country::Usa,
        corpus: CorpusLabel::Porn,
        store_dom: false,
    };
    let a = OpenWpmCrawler::new(&world, cfg.clone()).crawl(&corpus.sanitized);
    let b = OpenWpmCrawler::new(&world, cfg).crawl(&corpus.sanitized);
    assert_eq!(a.visits.len(), b.visits.len());
    for (x, y) in a.visits.iter().zip(&b.visits) {
        assert_eq!(x.domain, y.domain);
        assert_eq!(x.visit.requests.len(), y.visit.requests.len());
        for (rx, ry) in x.visit.requests.iter().zip(&y.visit.requests) {
            assert_eq!(rx.url, ry.url);
            assert_eq!(rx.status, ry.status);
        }
    }
}
